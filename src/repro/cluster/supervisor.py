"""One-process cluster: primary, standbys, placement, routing, failover.

The :class:`ClusterSupervisor` is the harness the cluster tests,
benches and the ``repro cluster`` CLI share: it launches a persisted
:class:`~repro.serve.manager.SessionManager` primary, a
:class:`~repro.replicate.source.ReplicationSource` shipping its WAL,
and N :class:`~repro.replicate.replica.StandbyReplica` followers whose
shard subsets come straight from :func:`plan_placement` — then wires a
:class:`~repro.cluster.gateway.ClusterGateway` over the lot so callers
see one ``submit``/``query`` surface.

Everything runs in this process (threads, loopback TCP), which is the
point: a kill is a method call, a failover is observable end to end,
and the chaos audit can hold the whole cluster in one assertion.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Union

from ..obs import logging as _obslog
from ..persist import PersistenceConfig, scan_journal
from ..replicate.promote import Promoter, PromotionReport
from ..replicate.replica import StandbyReplica
from ..replicate.source import ReplicationSource
from ..serve import ServeConfig, SessionManager
from .gateway import ClusterGateway
from .placement import NodeInfo, PlacementMap, plan_placement

__all__ = ["ClusterSupervisor", "traced_factory"]

_LOG = _obslog.get_logger("cluster")

PRIMARY_ID = "primary"


def traced_factory(base: Callable[[str], Any]) -> Callable[[str], Any]:
    """Wrap a session factory so every session is durability-traced.

    A traced session's END rides out its own ``wait_durable`` — with
    quorum commit armed, that is the client-visible ack the chaos
    audit and the quorum bench measure.
    """

    def build(player_id: str) -> Any:
        session = base(player_id)
        session.trace_id = f"quorum-{player_id}"
        return session

    return build


class ClusterSupervisor:
    """Launches and steers the node set of one single-primary cluster."""

    def __init__(
        self,
        game: Any,
        *,
        n_shards: int = 2,
        n_standbys: int = 3,
        replicas_per_shard: Optional[int] = None,
        quorum: int = 0,
        quorum_timeout_s: float = 5.0,
        root: Optional[Union[str, Path]] = None,
        tick_interval_s: float = 0.005,
        max_steps_per_tick: int = 8,
        group_window_s: float = 0.004,
        durable_wait_s: float = 5.0,
        max_read_lag_records: int = 1 << 30,
        batch_max_records: int = 64,
        poll_interval_s: float = 0.01,
        heartbeat_s: float = 0.05,
    ) -> None:
        if n_standbys < 1:
            raise ValueError("n_standbys must be >= 1")
        if quorum > n_standbys:
            raise ValueError(
                f"quorum {quorum} cannot exceed n_standbys {n_standbys}"
            )
        self.game = game
        self.n_shards = n_shards
        self.n_standbys = n_standbys
        self.replicas_per_shard = replicas_per_shard
        self.quorum = quorum
        self.quorum_timeout_s = quorum_timeout_s
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            root = self._tmp.name
        self.root = Path(root)
        self.tick_interval_s = tick_interval_s
        self.max_steps_per_tick = max_steps_per_tick
        self.group_window_s = group_window_s
        self.durable_wait_s = durable_wait_s
        self.max_read_lag_records = max_read_lag_records
        self.batch_max_records = batch_max_records
        self.poll_interval_s = poll_interval_s
        self.heartbeat_s = heartbeat_s

        self.persistence: Optional[PersistenceConfig] = None
        self.manager: Optional[SessionManager] = None
        self.source: Optional[ReplicationSource] = None
        self.placement: Optional[PlacementMap] = None
        self.gateway: Optional[ClusterGateway] = None
        self.standbys: Dict[str, StandbyReplica] = {}
        #: node ids whose process-equivalent was killed by this harness
        self.killed: List[str] = []
        #: live sessions the last ``promote(recover=True)`` rebuilt
        self.recovered_live = 0
        self._started = False
        self._primary_alive = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ClusterSupervisor":
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self.persistence = PersistenceConfig(
            directory=self.root / PRIMARY_ID,
            group_window_s=self.group_window_s,
            snapshot_every=0,
            compact=False,
            quorum_standbys=self.quorum,
            quorum_timeout_s=self.quorum_timeout_s,
        )
        self.manager = SessionManager(ServeConfig(
            n_shards=self.n_shards,
            tick_interval_s=self.tick_interval_s,
            max_steps_per_tick=self.max_steps_per_tick,
            persistence=self.persistence,
            durable_wait_s=self.durable_wait_s,
        ))
        self.source = ReplicationSource(
            self.persistence, self.n_shards,
            batch_max_records=self.batch_max_records,
            poll_interval_s=self.poll_interval_s,
            heartbeat_s=self.heartbeat_s,
        ).start()
        # barrier before start(): journals arm quorum as they open
        self.source.attach(self.manager)
        self.manager.start()
        self._primary_alive = True

        standby_ids = [f"standby-{k + 1}" for k in range(self.n_standbys)]
        self.placement = plan_placement(
            self.n_shards,
            NodeInfo(PRIMARY_ID, "primary", self.source.host,
                     self.source.port or 0),
            [NodeInfo(nid, "standby") for nid in standby_ids],
            replicas_per_shard=self.replicas_per_shard,
        )
        self.gateway = ClusterGateway(self.placement)
        self.gateway.register(PRIMARY_ID, self.manager)
        for nid in standby_ids:
            replica = StandbyReplica(
                self.root / nid, self.game, self.n_shards,
                self.source.host, self.source.port or 0,
                shards=self.placement.shards_of(nid),
                max_read_lag_records=self.max_read_lag_records,
                reconnect_backoff_s=0.02,
                client_name=nid,
            ).start()
            self.standbys[nid] = replica
            self.gateway.register(nid, replica)
        self.placement.save(self.root)
        _LOG.info("cluster.started", root=str(self.root),
                  shards=self.n_shards, standbys=standby_ids,
                  quorum=self.quorum)
        return self

    def stop(self) -> None:
        for replica in self.standbys.values():
            replica.stop()
        if self.source is not None:
            self.source.stop()
        if self.manager is not None:
            self.manager.shutdown(drain=False)
        self._primary_alive = False
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the one client surface ------------------------------------------
    def submit(self, player_id: str, factory: Callable[[str], Any]) -> bool:
        assert self.gateway is not None
        return self.gateway.submit(player_id, factory)

    def query(self, player_id: str) -> Dict[str, Any]:
        assert self.gateway is not None
        return self.gateway.query(player_id)

    # -- fault levers ----------------------------------------------------
    def kill_standby(self, node_id: str) -> None:
        """Stop one standby dead: no more acks, no more applies.

        Its old acks stay in the source's ledger (they *were* durable);
        quorum for new LSNs must now come from the survivors.
        """
        replica = self.standbys[node_id]
        replica.stop()
        self.killed.append(node_id)
        _LOG.warning("cluster.standby_killed", node=node_id)

    def kill_primary(self) -> None:
        """Discard-shutdown the primary and silence its heartbeats."""
        assert self.manager is not None and self.source is not None
        self.manager.shutdown(drain=False)
        self.source.stop()
        self._primary_alive = False
        self.killed.append(PRIMARY_ID)
        _LOG.warning("cluster.primary_killed")

    # -- failover --------------------------------------------------------
    def promote(
        self,
        node_id: str,
        *,
        heartbeat_timeout_s: float = 0.3,
        wait_for_failure: bool = True,
        recover: bool = False,
    ) -> PromotionReport:
        """Promote one standby and advance the placement map to match.

        Every shard the standby subscribed fails over to ``node_id`` at
        the promotion's fenced epoch; the map's version bumps, so the
        very next :meth:`submit` through the gateway routes to the new
        primary — no manual reconfiguration.  With ``recover=True`` a
        fresh recovered :class:`SessionManager` over the promoted
        directory is registered as the node's write surface.
        """
        assert self.placement is not None and self.gateway is not None
        replica = self.standbys[node_id]
        promoter = Promoter(replica, heartbeat_timeout_s=heartbeat_timeout_s)
        if wait_for_failure:
            promoter.wait_for_failure(
                timeout_s=max(1.0, heartbeat_timeout_s * 20)
            )
        report = promoter.promote(game=self.game)
        for row in report.shards:
            try:
                self.placement.advance(row["shard"], node_id, row["epoch"])
            except KeyError:
                continue  # shard never assigned: nothing to fail over
        self.placement.save(self.root)
        if recover:
            new_manager = SessionManager(ServeConfig(
                n_shards=self.n_shards,
                tick_interval_s=self.tick_interval_s,
                max_steps_per_tick=self.max_steps_per_tick,
                persistence=PersistenceConfig(
                    directory=replica.directory,
                    group_window_s=self.group_window_s,
                    snapshot_every=0,
                    compact=False,
                ),
                durable_wait_s=self.durable_wait_s,
            ))
            reports = new_manager.recover(self.game)
            self.recovered_live = sum(len(r.sessions) for r in reports)
            new_manager.start()
            self.manager = new_manager
            self.gateway.register(node_id, new_manager)
        return report

    # -- introspection ---------------------------------------------------
    def primary_tips(self) -> Dict[int, int]:
        """Durable tip LSN per shard of the (possibly dead) primary."""
        assert self.persistence is not None
        return {
            shard: scan_journal(
                self.persistence.shard_dir(shard), truncate=False
            ).tip_lsn
            for shard in range(self.n_shards)
            if self.persistence.shard_dir(shard).is_dir()
        }

    def wait_caught_up(self, timeout_s: float = 30.0) -> bool:
        """Every live standby has applied the primary's durable tips."""
        tips = self.primary_tips()
        deadline = monotonic() + timeout_s
        for replica in self.standbys.values():
            if not replica.alive:
                continue
            if not replica.wait_caught_up(
                tips, timeout_s=max(0.0, deadline - monotonic())
            ):
                return False
        return True

    def status(self) -> Dict[str, Any]:
        """One JSON-able view of the whole cluster (the CLI prints it)."""
        assert self.placement is not None
        manager = self.manager
        return {
            "root": str(self.root),
            "quorum": self.quorum,
            "primary": {
                "node_id": PRIMARY_ID,
                "alive": self._primary_alive,
                "completed_sessions": (
                    manager.completed_sessions if manager is not None else 0
                ),
                "tips": {str(k): v for k, v in self.primary_tips().items()},
            },
            "placement": self.placement.to_dict(),
            "subscriptions": (
                self.source.subscriptions() if self.source is not None else {}
            ),
            "standbys": {
                nid: {
                    "alive": replica.alive,
                    "subscribed": list(replica.shards),
                    "status": replica.status(),
                }
                for nid, replica in self.standbys.items()
            },
            "killed": list(self.killed),
        }
