"""Placement-aware routing: reads to the least-lagged standby, writes
to whoever the map says is primary *now*.

A :class:`ClusterGateway` owns no sockets — it is the routing brain
shared by the in-process supervisor, the chaos harness and (through
``GatewayServer(placement=...)``) the TCP gateway's error details.  It
consults the :class:`~repro.cluster.placement.PlacementMap` on every
call, so a failover that advances the map's epoch reroutes the very
next write with no reconfiguration: the gateway holds node *ids*, the
map resolves them to nodes.

* :meth:`submit` resolves the shard's current primary and forwards.
  When the map's epoch has advanced past what this gateway last saw,
  the switch is counted (``repro_placement_failover_routes_total``) —
  the observable moment a write "failed over".
* :meth:`query` ranks the shard's standbys by replication lag and
  asks the least-lagged live one first, falling through the order on
  :class:`~repro.replicate.replica.ReplicaLagging`; a shard whose
  standbys are all lagging re-raises the *smallest* lag so callers can
  back off proportionally.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..replicate.replica import ReplicaLagging
from ..serve.manager import shard_for
from .placement import PlacementMap

__all__ = ["ClusterGateway"]

_M_READS = _obs.counter(
    "repro_placement_reads_total",
    "QUERY reads routed via the placement map, by result",
)
_M_FAILOVER_ROUTES = _obs.counter(
    "repro_placement_failover_routes_total",
    "Writes rerouted because the map's epoch advanced, by shard",
)

_LOG = _obslog.get_logger("cluster")


class ClusterGateway:
    """Routes submits and queries through the placement map."""

    def __init__(self, placement: PlacementMap) -> None:
        self.placement = placement
        #: node id -> live object: a ``SessionManager`` for primaries,
        #: a ``StandbyReplica`` (or promoted equivalent) for standbys
        self._nodes: Dict[str, Any] = {}
        self._lock = threading.Lock()
        #: shard -> last epoch a write was routed under; a jump means
        #: the map failed the shard over underneath us
        self._seen_epochs: Dict[int, int] = {}

    # -- node registry --------------------------------------------------
    def register(self, node_id: str, obj: Any) -> None:
        """Bind a node id from the map to its live in-process object."""
        with self._lock:
            self._nodes[node_id] = obj

    def resolve(self, node_id: str) -> Optional[Any]:
        with self._lock:
            return self._nodes.get(node_id)

    # -- writes ---------------------------------------------------------
    def submit(self, player_id: str, factory: Callable[[str], Any]) -> bool:
        """Forward one session submit to the shard's current primary.

        Consults the map per call: after ``PlacementMap.advance`` the
        next submit lands on the promoted node with zero manual steps.
        """
        shard = shard_for(player_id, self.placement.n_shards)
        entry = self.placement.assignment(shard)
        seen = self._seen_epochs.get(shard)
        if seen is not None and entry.epoch > seen:
            _M_FAILOVER_ROUTES.inc(shard=str(shard))
            _LOG.info("cluster.write_failover", shard=shard,
                      primary=entry.primary, epoch=entry.epoch)
        self._seen_epochs[shard] = entry.epoch
        primary = self.resolve(entry.primary)
        if primary is None:
            raise KeyError(
                f"primary {entry.primary!r} for shard {shard} is not "
                f"registered with this gateway"
            )
        return bool(primary.submit(player_id, factory))

    # -- reads ----------------------------------------------------------
    def query(self, player_id: str) -> Dict[str, Any]:
        """Lag-bounded read from the least-lagged standby of the shard.

        Candidate order: the shard's standbys sorted by current lag
        (dead or unregistered nodes skipped), then — when every standby
        refused or none exists — the primary, if it can answer queries
        (a promoted replica can; a live ``SessionManager`` cannot and
        is skipped).  Raises ``KeyError`` for an unknown player and
        re-raises the smallest :class:`ReplicaLagging` when lag was the
        only obstacle.
        """
        shard = shard_for(player_id, self.placement.n_shards)
        entry = self.placement.assignment(shard)
        candidates = []
        for node_id in entry.standbys + (entry.primary,):
            obj = self.resolve(node_id)
            if obj is None or not hasattr(obj, "query"):
                continue
            if not getattr(obj, "alive", True):
                # a dead standby still answers from its warm mirror
                # only when nothing healthier owns the shard
                candidates.append((float("inf"), len(candidates), node_id, obj))
                continue
            try:
                lag = obj.lag(shard)
            except (KeyError, IndexError, AttributeError):
                continue
            candidates.append((lag, len(candidates), node_id, obj))
        if not candidates:
            _M_READS.inc(result="miss")
            raise KeyError(player_id)
        lagging: Optional[ReplicaLagging] = None
        unknown = 0
        for _lag, _order, node_id, obj in sorted(candidates):
            try:
                view = dict(obj.query(player_id))
                view["node"] = node_id
                view["placement_version"] = self.placement.version
                _M_READS.inc(result="ok")
                return view
            except ReplicaLagging as exc:
                if lagging is None or exc.lag_ticks < lagging.lag_ticks:
                    lagging = exc
            except KeyError:
                unknown += 1
        if lagging is not None and unknown < len(candidates):
            _M_READS.inc(result="lagging")
            raise lagging
        _M_READS.inc(result="miss")
        raise KeyError(player_id)
