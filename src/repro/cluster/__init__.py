"""Cluster control plane: placement, quorum commit, routed failover.

This package turns the single-standby replication of
:mod:`repro.replicate` into a small cluster:

* :mod:`~repro.cluster.placement` — the versioned
  :class:`PlacementMap` (shard → primary + ordered standby subset,
  epoch-fenced) and :func:`plan_placement`, the round-robin subset
  planner;
* :mod:`~repro.cluster.gateway` — :class:`ClusterGateway`, routing
  lag-bounded reads to the least-lagged standby owning the shard and
  failing writes over the moment the map's epoch advances;
* :mod:`~repro.cluster.supervisor` — :class:`ClusterSupervisor`, the
  one-process node-set harness (tests, benches, ``repro cluster``);
* :mod:`~repro.cluster.chaos` — :func:`run_cluster_chaos`, the
  kill-a-quorum-member audit behind ``repro chaos
  repl-quorum-partition``.
"""

from .chaos import ClusterChaosReport, run_cluster_chaos
from .gateway import ClusterGateway
from .placement import (
    NodeInfo,
    PlacementMap,
    ShardAssignment,
    plan_placement,
)
from .supervisor import ClusterSupervisor, traced_factory

__all__ = [
    "ClusterChaosReport",
    "ClusterGateway",
    "ClusterSupervisor",
    "NodeInfo",
    "PlacementMap",
    "ShardAssignment",
    "plan_placement",
    "run_cluster_chaos",
    "traced_factory",
]
