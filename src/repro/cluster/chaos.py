"""Quorum chaos: kill a quorum member mid-burst, then the primary.

``run_cluster_chaos`` is the harness behind ``repro chaos
repl-quorum-partition`` and the cluster soak test.  One run drives the
whole quorum-commit story end to end:

1. **Arm** a fault plan against the ``repl.link`` site (a delayed
   batch, a severed shipping connection) and launch a
   :class:`~repro.cluster.supervisor.ClusterSupervisor`: one primary,
   N standbys each subscribed to their placement-map subset, quorum
   commit requiring K durable mirrors per client-acked END.
2. **Soak**: traced sessions submit through the placement-routed
   gateway; every END blocks in ``wait_durable`` until K standbys have
   acked its LSN.
3. **Kill a quorum member** once a fraction of the burst completed.
   Quorum for every later END must ride the survivors — the burst
   keeps completing, with zero durability timeouts.
4. **Kill the primary**, let the survivors catch up to its durable
   tips, promote the furthest-ahead one.  The placement map advances
   (higher epoch, bumped version) and a fresh manager recovers from
   the promoted log.
5. **Audit**:

   * *quorum never lied* — no durability wait timed out, and every
     record in the dead primary's journal is present in **every**
     surviving quorum member's journal (not just K of them);
   * *bit-identity* — survivor session digests equal an independent
     reference replay, and the digests recovery computes from the
     promoted log agree with the promoted survivor's mirror;
   * *reads survive the failover* — a placement-routed QUERY for every
     finished session answers from a surviving node, post-failover,
     with no reconfiguration;
   * *writes fail over* — one post-promotion submit routes to the new
     primary and completes;
   * *the plan fired* — every armed fault injected its scheduled count.

The :class:`ClusterChaosReport` is plain data (JSON-able) for the CI
cluster-smoke artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from typing import Any, Dict, List, Optional, Union

from ..faultline import install, uninstall
from ..faultline.chaos import reference_digest
from ..faultline.plan import CompiledPlan, FaultPlan, builtin_plans
from ..obs import metrics as _obs
from ..persist import state_digest
from ..persist.records import ops_from_dicts
from ..replicate.chaos import _journal_record_keys
from ..serve.session import session_factory_for_script
from .supervisor import ClusterSupervisor, traced_factory

__all__ = ["ClusterChaosReport", "run_cluster_chaos"]

_TIMEOUT_COUNTERS = (
    "repro_persist_durability_timeout_total",
    "repro_quorum_timeouts_total",
)


def _timeout_totals() -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name in _TIMEOUT_COUNTERS:
        metric = _obs.REGISTRY.get(name)
        out[name] = metric.total() if metric is not None else 0.0
    return out


@dataclass
class ClusterChaosReport:
    """Everything one quorum chaos run proved (or failed to)."""

    plan: str
    seed: int
    shards: int
    standbys: int
    quorum: int
    sessions: int
    submitted: int
    completed_before_standby_kill: int
    completed_before_primary_kill: int
    standby_killed: str
    promoted: str
    primary_records: int
    survivor_records: Dict[str, int] = field(default_factory=dict)
    lost_records: int = 0
    caught_up: bool = False
    durability_timeouts: float = 0.0
    quorum_timeouts: float = 0.0
    promoted_epochs: Dict[int, int] = field(default_factory=dict)
    placement_version: int = 0
    digests_checked: int = 0
    digest_mismatches: List[str] = field(default_factory=list)
    queries_total: int = 0
    queries_ok: int = 0
    post_failover_submit_ok: bool = False
    resumed_live: int = 0
    resumed_completed: int = 0
    faults: List[Dict[str, Any]] = field(default_factory=list)
    injected_total: int = 0
    all_faults_fired: bool = False
    duration_s: float = 0.0

    @property
    def bit_identical(self) -> bool:
        return self.digests_checked > 0 and not self.digest_mismatches

    @property
    def ok(self) -> bool:
        """The gate the cluster soak test and CI smoke assert on."""
        return (
            self.lost_records == 0
            and self.caught_up
            and self.durability_timeouts == 0
            and self.quorum_timeouts == 0
            and self.bit_identical
            and self.queries_ok == self.queries_total
            and self.queries_total > 0
            and self.post_failover_submit_ok
            and self.resumed_live == self.resumed_completed
            and self.all_faults_fired
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "shards": self.shards,
            "standbys": self.standbys,
            "quorum": self.quorum,
            "sessions": self.sessions,
            "submitted": self.submitted,
            "completed_before_standby_kill":
                self.completed_before_standby_kill,
            "completed_before_primary_kill":
                self.completed_before_primary_kill,
            "standby_killed": self.standby_killed,
            "promoted": self.promoted,
            "primary_records": self.primary_records,
            "survivor_records": dict(self.survivor_records),
            "lost_records": self.lost_records,
            "caught_up": self.caught_up,
            "durability_timeouts": self.durability_timeouts,
            "quorum_timeouts": self.quorum_timeouts,
            "promoted_epochs": {
                str(k): v for k, v in self.promoted_epochs.items()
            },
            "placement_version": self.placement_version,
            "digests_checked": self.digests_checked,
            "digest_mismatches": list(self.digest_mismatches),
            "bit_identical": self.bit_identical,
            "queries_total": self.queries_total,
            "queries_ok": self.queries_ok,
            "post_failover_submit_ok": self.post_failover_submit_ok,
            "resumed_live": self.resumed_live,
            "resumed_completed": self.resumed_completed,
            "faults": list(self.faults),
            "injected_total": self.injected_total,
            "all_faults_fired": self.all_faults_fired,
            "ok": self.ok,
            "duration_s": round(self.duration_s, 3),
        }


def run_cluster_chaos(
    plan: Union[str, FaultPlan, CompiledPlan] = "repl-quorum-partition",
    *,
    seed: Optional[int] = None,
    sessions: int = 12,
    n_shards: int = 2,
    n_standbys: int = 3,
    quorum: int = 2,
    game: Any = None,
    scripts: Optional[List[Any]] = None,
    kill_standby_after_fraction: float = 0.25,
    heartbeat_timeout_s: float = 0.3,
    timeout_s: float = 60.0,
) -> ClusterChaosReport:
    """One soak / kill-a-member / kill-the-primary / audit cycle.

    ``kill_standby_after_fraction`` of the burst must complete before a
    quorum member dies; the rest of the burst completes on the
    survivors alone.  Snapshots and compaction stay off so the journal
    record-set audits are exact.  Metrics recording is forced on for
    the run (and restored after): zero observed durability/quorum
    timeouts is part of the contract under audit.
    """
    if isinstance(plan, str):
        plans = builtin_plans()
        if plan not in plans:
            raise ValueError(
                f"unknown plan {plan!r} (built-ins: {sorted(plans)})"
            )
        plan = plans[plan]
    compiled = plan.compile(seed) if isinstance(plan, FaultPlan) else plan
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if not 1 <= quorum < n_standbys:
        raise ValueError(
            "need 1 <= quorum < n_standbys (a member dies mid-run)"
        )

    from ..core import fetch_quest_game
    from ..students import cohort_scripts

    t0 = perf_counter()
    if game is None:
        game = fetch_quest_game(n_quests=2, title="cluster chaos soak").build()
    if scripts is None:
        scripts = cohort_scripts(game, min(8, sessions), seed=compiled.seed)
    assignments = [
        (f"{scripts[k % len(scripts)].player_id}#c{k}",
         scripts[k % len(scripts)])
        for k in range(sessions)
    ]

    was_enabled = _obs.enabled()
    _obs.set_enabled(True)
    timeouts_before = _timeout_totals()
    deadline = monotonic() + timeout_s
    injector = install(compiled)
    victim = f"standby-{n_standbys}"
    supervisor = ClusterSupervisor(
        game,
        n_shards=n_shards,
        n_standbys=n_standbys,
        quorum=quorum,
        tick_interval_s=0.005,
        max_steps_per_tick=8,
        group_window_s=0.004,
        batch_max_records=4,
        poll_interval_s=0.01,
        heartbeat_s=0.05,
    )
    try:
        supervisor.start()
        assert supervisor.manager is not None
        assert supervisor.placement is not None
        manager = supervisor.manager

        submitted = 0
        for pid, script in assignments:
            factory = traced_factory(
                session_factory_for_script(game, script)
            )
            if supervisor.submit(pid, factory):
                submitted += 1

        kill_target = max(1, int(sessions * kill_standby_after_fraction))
        while (manager.completed_sessions < kill_target
               and monotonic() < deadline):
            sleep(0.01)
        completed_before_standby_kill = manager.completed_sessions
        # the mid-burst member kill: quorum must ride the survivors now
        supervisor.kill_standby(victim)

        while (manager.completed_sessions < submitted
               and monotonic() < deadline):
            sleep(0.01)
        completed_before_primary_kill = manager.completed_sessions

        supervisor.kill_primary()
        caught_up = supervisor.wait_caught_up(
            timeout_s=max(1.0, deadline - monotonic())
        )

        survivors = [
            nid for nid, replica in supervisor.standbys.items()
            if nid != victim
        ]
        # promote whichever survivor is furthest ahead
        promoted = max(
            survivors,
            key=lambda nid: sum(
                st.commit_lsn
                for st in supervisor.standbys[nid].shard_states()
            ),
        )
        promote_report = supervisor.promote(
            promoted,
            heartbeat_timeout_s=heartbeat_timeout_s,
            recover=True,
        )
    finally:
        uninstall()

    # -- the audit -------------------------------------------------------
    try:
        assert supervisor.persistence is not None
        assert supervisor.placement is not None
        by_pid = dict(assignments)
        mismatches: List[str] = []
        checked = 0

        primary_records = 0
        survivor_records: Dict[str, int] = {}
        lost = 0
        for shard in range(n_shards):
            p_dir = supervisor.persistence.shard_dir(shard)
            p_keys = _journal_record_keys(p_dir) if p_dir.is_dir() else []
            primary_records += len(p_keys)
            for nid in survivors:
                s_dir = (supervisor.standbys[nid].directory
                         / f"shard-{shard:02d}")
                s_keys = (_journal_record_keys(s_dir)
                          if s_dir.is_dir() else [])
                survivor_records[nid] = (
                    survivor_records.get(nid, 0) + len(s_keys)
                )
                # the quorum claim, member by member: nothing the dead
                # primary made durable is missing from ANY survivor
                lost += len(set(p_keys) - set(s_keys))

        # bit-identity: every surviving mirror vs an independent replay
        survivor_digests: Dict[str, Dict[str, str]] = {}
        for nid in survivors:
            digests: Dict[str, str] = {}
            for shard_state in supervisor.standbys[nid].shard_states():
                for sid, sess in shard_state.sessions.items():
                    checked += 1
                    actual = state_digest(sess.engine.state)
                    digests[sid] = actual
                    script = by_pid.get(sid)
                    ops = (
                        ops_from_dicts(sess.ops) if sess.ops
                        else (script.ops if script else [])
                    )
                    if actual != reference_digest(
                        game, ops, sess.dt, sess.cursor
                    ):
                        mismatches.append(f"{nid}:{sid}")
            survivor_digests[nid] = digests
        # and the promoted log recovers to the promoted mirror's states
        for sid, digest in promote_report.digests.items():
            checked += 1
            if survivor_digests.get(promoted, {}).get(sid) != digest:
                mismatches.append(f"recover:{sid}")

        # reads after the failover: placement-routed, zero reconfig
        queries_total = queries_ok = 0
        for pid, _script in assignments:
            queries_total += 1
            try:
                view = supervisor.query(pid)
            except KeyError:
                continue
            if view.get("node") in survivors or view.get("node") == victim:
                queries_ok += 1

        # writes after the failover: the map's epoch advance reroutes
        # the submit to the promoted node's recovered manager
        post_pid = f"{assignments[0][1].player_id}#post"
        post_ok = supervisor.submit(
            post_pid, session_factory_for_script(game, assignments[0][1])
        )
        new_manager = supervisor.manager
        assert new_manager is not None
        # drain everything the promoted manager recovered + the new one
        new_manager.drain(timeout=max(1.0, deadline - monotonic()))
        resumed_completed = new_manager.completed_sessions
        resumed_live = supervisor.recovered_live + (1 if post_ok else 0)
        post_failover_submit_ok = bool(post_ok) and resumed_completed >= 1

        timeouts_after = _timeout_totals()
        version = supervisor.placement.version
    finally:
        supervisor.stop()
        _obs.set_enabled(was_enabled)

    return ClusterChaosReport(
        plan=compiled.name,
        seed=compiled.seed,
        shards=n_shards,
        standbys=n_standbys,
        quorum=quorum,
        sessions=sessions,
        submitted=submitted,
        completed_before_standby_kill=completed_before_standby_kill,
        completed_before_primary_kill=completed_before_primary_kill,
        standby_killed=victim,
        promoted=promoted,
        primary_records=primary_records,
        survivor_records=survivor_records,
        lost_records=lost,
        caught_up=caught_up,
        durability_timeouts=(
            timeouts_after[_TIMEOUT_COUNTERS[0]]
            - timeouts_before[_TIMEOUT_COUNTERS[0]]
        ),
        quorum_timeouts=(
            timeouts_after[_TIMEOUT_COUNTERS[1]]
            - timeouts_before[_TIMEOUT_COUNTERS[1]]
        ),
        promoted_epochs=promote_report.epochs,
        placement_version=version,
        digests_checked=checked,
        digest_mismatches=mismatches,
        queries_total=queries_total,
        queries_ok=queries_ok,
        post_failover_submit_ok=post_failover_submit_ok,
        resumed_live=resumed_live,
        resumed_completed=resumed_completed,
        faults=injector.report(),
        injected_total=injector.injected_total,
        all_faults_fired=injector.all_fired(),
        duration_s=perf_counter() - t0,
    )
