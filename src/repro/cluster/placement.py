"""The versioned placement map: which node owns which shard.

A :class:`PlacementMap` is the cluster's single declarative answer to
"who serves shard *i*?": one primary node plus an *ordered* standby
set per shard, a monotonically increasing map **version** (bumped on
every assignment change), and a per-shard **epoch** reusing the exact
fencing currency of :mod:`repro.replicate.promote` — the epoch in the
map is the epoch in the shard's ``EPOCH`` sidecar, so a router that
trusts the map and a journal that fences stale primaries agree on
whose history is current.

The map is process-shared state (gateway, supervisor and CLI all read
it) behind one lock, JSON round-trippable so ``repro cluster status``
can inspect a cluster that is not in this process, and deliberately
mechanism-free: it says who *should* own what; the supervisor makes it
true and the :class:`~repro.cluster.gateway.ClusterGateway` routes by
it.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import logging as _obslog
from ..obs import metrics as _obs

__all__ = ["NodeInfo", "PlacementMap", "ShardAssignment", "plan_placement"]

_M_VERSION = _obs.gauge(
    "repro_placement_version",
    "Current placement-map version (bumps on every assignment change)",
)
_M_FAILOVERS = _obs.counter(
    "repro_placement_failovers_total",
    "Shards whose primary changed via PlacementMap.advance, by shard",
)

_LOG = _obslog.get_logger("cluster")

PLACEMENT_FILE = "PLACEMENT.json"


@dataclass(frozen=True, slots=True)
class NodeInfo:
    """One cluster member as the map knows it."""

    node_id: str
    kind: str = "standby"  # "primary" | "standby"
    host: str = ""
    port: int = 0

    @property
    def address(self) -> str:
        """``host:port`` when known, the node id otherwise."""
        return f"{self.host}:{self.port}" if self.host else self.node_id

    def to_dict(self) -> Dict[str, Any]:
        return {"node_id": self.node_id, "kind": self.kind,
                "host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "NodeInfo":
        return cls(
            node_id=str(doc["node_id"]),
            kind=str(doc.get("kind", "standby")),
            host=str(doc.get("host", "")),
            port=int(doc.get("port", 0)),
        )


@dataclass(slots=True)
class ShardAssignment:
    """One shard's row in the map: primary, ordered standbys, epoch."""

    shard: int
    primary: str
    standbys: Tuple[str, ...] = ()
    epoch: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"shard": self.shard, "primary": self.primary,
                "standbys": list(self.standbys), "epoch": self.epoch}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ShardAssignment":
        return cls(
            shard=int(doc["shard"]),
            primary=str(doc["primary"]),
            standbys=tuple(str(s) for s in doc.get("standbys", [])),
            epoch=int(doc.get("epoch", 1)),
        )


class PlacementMap:
    """Versioned shard → (primary, ordered standbys, epoch) map."""

    def __init__(
        self,
        n_shards: int,
        *,
        version: int = 1,
        nodes: Optional[Dict[str, NodeInfo]] = None,
        entries: Optional[Dict[int, ShardAssignment]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self._version = version
        self._nodes: Dict[str, NodeInfo] = dict(nodes or {})
        self._entries: Dict[int, ShardAssignment] = dict(entries or {})
        self._lock = threading.Lock()
        if _obs.enabled():
            _M_VERSION.set(self._version)

    # -- reads (any thread) --------------------------------------------
    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def nodes(self) -> Dict[str, NodeInfo]:
        with self._lock:
            return dict(self._nodes)

    def node(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def assignment(self, shard: int) -> ShardAssignment:
        with self._lock:
            entry = self._entries.get(shard)
            if entry is None:
                raise KeyError(f"shard {shard} has no assignment")
            return ShardAssignment(
                entry.shard, entry.primary, entry.standbys, entry.epoch
            )

    def primary_for(self, shard: int) -> str:
        return self.assignment(shard).primary

    def standbys_for(self, shard: int) -> Tuple[str, ...]:
        return self.assignment(shard).standbys

    def epoch_of(self, shard: int) -> int:
        return self.assignment(shard).epoch

    def shards_of(self, node_id: str) -> List[int]:
        """The shard-subscription set of one node (primary or standby).

        This is exactly what a :class:`StandbyReplica` passes as its
        ``shards=`` subset.
        """
        with self._lock:
            return sorted(
                shard for shard, entry in self._entries.items()
                if entry.primary == node_id or node_id in entry.standbys
            )

    def primary_address(self, shard: Optional[int] = None) -> Optional[str]:
        """Address of the primary (for ``shard``, or the unique one).

        With ``shard=None`` and several distinct primaries, the lowest
        shard's primary is reported — good enough for an error detail
        whose job is "go *somewhere* writable".
        """
        with self._lock:
            if not self._entries:
                return None
            if shard is None:
                shard = min(self._entries)
            entry = self._entries.get(shard)
            if entry is None:
                return None
            node = self._nodes.get(entry.primary)
            return node.address if node is not None else entry.primary

    # -- writes --------------------------------------------------------
    def register_node(self, node: NodeInfo) -> None:
        with self._lock:
            self._nodes[node.node_id] = node

    def assign(
        self,
        shard: int,
        primary: str,
        standbys: Sequence[str] = (),
        epoch: int = 1,
    ) -> None:
        """(Re)assign one shard; bumps the map version."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range")
        with self._lock:
            self._entries[shard] = ShardAssignment(
                shard, primary, tuple(standbys), epoch
            )
            self._bump_locked()

    def advance(
        self, shard: int, new_primary: str, epoch: int
    ) -> ShardAssignment:
        """Fail the shard over: new primary, higher epoch, new version.

        The epoch must strictly advance — the same fencing rule the
        replication handshake enforces; a stale promotion cannot move
        the map backwards.
        """
        with self._lock:
            entry = self._entries.get(shard)
            if entry is None:
                raise KeyError(f"shard {shard} has no assignment")
            if epoch <= entry.epoch:
                raise ValueError(
                    f"epoch must advance (shard {shard}: "
                    f"{epoch} <= {entry.epoch})"
                )
            standbys = tuple(
                s for s in entry.standbys if s != new_primary
            )
            old_primary = entry.primary
            self._entries[shard] = ShardAssignment(
                shard, new_primary, standbys, epoch
            )
            node = self._nodes.get(new_primary)
            if node is not None and node.kind != "primary":
                self._nodes[new_primary] = NodeInfo(
                    node.node_id, "primary", node.host, node.port
                )
            self._bump_locked()
            _M_FAILOVERS.inc(shard=str(shard))
            _LOG.info("cluster.placement_advanced", shard=shard,
                      old=old_primary, new=new_primary, epoch=epoch,
                      version=self._version)
            return self._entries[shard]

    def _bump_locked(self) -> None:
        self._version += 1
        if _obs.enabled():
            _M_VERSION.set(self._version)

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "n_shards": self.n_shards,
                "version": self._version,
                "nodes": [n.to_dict() for n in self._nodes.values()],
                "assignments": [
                    self._entries[s].to_dict()
                    for s in sorted(self._entries)
                ],
            }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "PlacementMap":
        nodes = {
            n["node_id"]: NodeInfo.from_dict(n)
            for n in doc.get("nodes", [])
        }
        entries = {
            int(a["shard"]): ShardAssignment.from_dict(a)
            for a in doc.get("assignments", [])
        }
        return cls(
            int(doc["n_shards"]),
            version=int(doc.get("version", 1)),
            nodes=nodes,
            entries=entries,
        )

    def save(self, root: Union[str, Path]) -> Path:
        """Durably persist the map under ``root`` (atomic replace)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / PLACEMENT_FILE
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, root: Union[str, Path]) -> "PlacementMap":
        path = Path(root) / PLACEMENT_FILE
        return cls.from_dict(json.loads(path.read_text()))


@dataclass(slots=True)
class _RoundRobin:
    """Deterministic standby rotation for :func:`plan_placement`."""

    pool: List[str] = field(default_factory=list)
    offset: int = 0

    def take(self, count: int) -> Tuple[str, ...]:
        if not self.pool or count <= 0:
            return ()
        picked = tuple(
            self.pool[(self.offset + k) % len(self.pool)]
            for k in range(min(count, len(self.pool)))
        )
        self.offset = (self.offset + 1) % len(self.pool)
        return picked


def plan_placement(
    n_shards: int,
    primary: NodeInfo,
    standbys: Sequence[NodeInfo],
    replicas_per_shard: Optional[int] = None,
) -> PlacementMap:
    """Round-robin a standby pool over the shards of one primary.

    Each shard gets ``replicas_per_shard`` standbys (default: every
    standby), rotated so the subsets interleave — with 3 standbys and 2
    replicas per shard, every standby carries two-thirds of the
    keyspace and every shard survives any single standby loss.
    """
    pmap = PlacementMap(n_shards)
    pmap.register_node(NodeInfo(primary.node_id, "primary",
                                primary.host, primary.port))
    for node in standbys:
        pmap.register_node(NodeInfo(node.node_id, "standby",
                                    node.host, node.port))
    want = len(standbys) if replicas_per_shard is None else replicas_per_shard
    rotation = _RoundRobin(pool=[n.node_id for n in standbys])
    for shard in range(n_shards):
        pmap.assign(
            shard, primary.node_id, rotation.take(want), epoch=1,
        )
    return pmap
