"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro import obs
from repro.obs.metrics import MetricError, MetricsRegistry


@pytest.fixture
def live():
    """Fresh global registry with recording enabled; restores disabled."""
    was = obs.enabled()
    obs.reset()
    obs.enable()
    yield obs
    obs.set_enabled(was)
    obs.reset()


class TestCounter:
    def test_inc_and_value(self, live):
        c = obs.counter("t_hits_total", "test")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)
        assert c.total() == pytest.approx(3.5)

    def test_labeled_series_are_independent(self, live):
        c = obs.counter("t_labeled_total")
        c.inc(policy="lru")
        c.inc(policy="lru")
        c.inc(policy="fifo")
        assert c.value(policy="lru") == 2
        assert c.value(policy="fifo") == 1
        assert c.value(policy="graph") == 0
        assert c.total() == 3

    def test_label_order_does_not_matter(self, live):
        c = obs.counter("t_order_total")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_counter_cannot_decrease(self, live):
        c = obs.counter("t_mono_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_untouched_counter_defaults_to_zero(self, live):
        assert obs.counter("t_untouched_total").value() == 0.0


class TestGauge:
    def test_set_inc_dec(self, live):
        g = obs.gauge("t_active")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_gauge_goes_negative(self, live):
        g = obs.gauge("t_neg")
        g.dec(3)
        assert g.value() == -3


class TestHistogramBucketing:
    BUCKETS = (1.0, 2.0, 4.0)

    def _hist(self, name):
        return obs.histogram(name, buckets=self.BUCKETS)

    def test_value_on_exact_bound_lands_in_that_bucket(self, live):
        h = self._hist("t_exact")
        h.observe(1.0)   # == first bound -> bucket 0
        h.observe(2.0)   # == second bound -> bucket 1
        h.observe(4.0)   # == last bound -> bucket 2
        series = h.series()[0][1]
        assert series.counts == [1, 1, 1, 0]

    def test_overflow_lands_in_inf_bucket(self, live):
        h = self._hist("t_inf")
        h.observe(4.0000001)
        h.observe(1e9)
        series = h.series()[0][1]
        assert series.counts == [0, 0, 0, 2]

    def test_underflow_lands_in_first_bucket(self, live):
        h = self._hist("t_under")
        h.observe(0.0)
        h.observe(-5.0)
        series = h.series()[0][1]
        assert series.counts == [2, 0, 0, 0]

    def test_sum_and_count(self, live):
        h = self._hist("t_sumcount")
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count_of() == 4
        assert h.sum_of() == pytest.approx(105.0)

    def test_timer_context_manager_observes_elapsed(self, live):
        h = obs.histogram("t_timer_seconds")
        with h.time(op="x"):
            pass
        assert h.count_of(op="x") == 1
        assert h.sum_of(op="x") >= 0.0

    def test_bucket_bounds_must_increase(self, live):
        with pytest.raises(MetricError):
            obs.histogram("t_bad", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            obs.histogram("t_bad2", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            obs.histogram("t_bad3", buckets=())


class TestDisabledMode:
    def test_disabled_records_nothing(self):
        obs.reset()
        obs.disable()
        c = obs.counter("t_off_total")
        g = obs.gauge("t_off_gauge")
        h = obs.histogram("t_off_seconds")
        c.inc(99)
        g.set(42)
        h.observe(1.0)
        assert c.value() == 0
        assert g.value() == 0
        assert h.count_of() == 0

    def test_disabled_timer_is_shared_noop(self):
        obs.disable()
        h = obs.histogram("t_off_timer")
        t1 = h.time()
        t2 = h.time()
        assert t1 is t2  # the shared null timer: no allocation, no clock
        with t1:
            pass
        assert h.count_of() == 0

    def test_enable_disable_roundtrip(self):
        obs.reset()
        obs.enable()
        c = obs.counter("t_toggle_total")
        c.inc()
        obs.disable()
        c.inc()
        assert c.value() == 1
        obs.reset()


class TestRegistry:
    def test_get_or_create_is_idempotent(self, live):
        a = obs.counter("t_same_total", "first wins")
        b = obs.counter("t_same_total", "ignored")
        assert a is b
        assert a.help == "first wins"

    def test_kind_clash_raises(self, live):
        obs.counter("t_clash")
        with pytest.raises(MetricError):
            obs.gauge("t_clash")

    def test_invalid_names_rejected(self, live):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("")
        with pytest.raises(MetricError):
            reg.counter("has spaces")
        with pytest.raises(MetricError):
            reg.counter("0starts_with_digit")

    def test_reset_clears_series_keeps_definitions(self, live):
        c = obs.counter("t_reset_total")
        c.inc(5)
        obs.reset()
        assert c.value() == 0
        assert obs.get_registry().get("t_reset_total") is c

    def test_snapshot_shape(self, live):
        obs.counter("t_snap_total").inc(2, kind="a")
        obs.histogram("t_snap_seconds", buckets=(1.0,)).observe(0.5)
        snap = obs.snapshot()
        assert snap["enabled"] is True
        by_name = {m["name"]: m for m in snap["metrics"]}
        c = by_name["t_snap_total"]
        assert c["kind"] == "counter"
        assert c["series"] == [{"labels": {"kind": "a"}, "value": 2.0}]
        h = by_name["t_snap_seconds"]
        assert h["buckets"] == [1.0]
        assert h["series"][0]["counts"] == [1, 0]
        assert h["series"][0]["count"] == 1


class TestTimeSeriesRing:
    def test_sample_appends_and_reduces(self, live):
        from repro.obs.metrics import TimeSeriesRing

        obs.counter("t_ring_total").inc(3, kind="a")
        obs.counter("t_ring_total").inc(2, kind="b")
        obs.histogram("t_ring_seconds", buckets=(1.0,)).observe(0.5)
        ring = TimeSeriesRing()
        values = ring.sample(at=100.0)
        # counters reduce to the sum over labelled series
        assert values["t_ring_total"] == pytest.approx(5.0)
        # histograms reduce to their total observation count
        assert values["t_ring_seconds"] == 1
        assert len(ring) == 1
        assert ring.samples()[0]["t"] == 100.0

    def test_capacity_drops_oldest(self, live):
        from repro.obs.metrics import TimeSeriesRing

        ring = TimeSeriesRing(capacity=2)
        for t in (1.0, 2.0, 3.0):
            ring.sample(at=t)
        assert [s["t"] for s in ring.samples()] == [2.0, 3.0]

    def test_series_fills_missing_with_zero(self, live):
        from repro.obs.metrics import TimeSeriesRing

        ring = TimeSeriesRing()
        ring.sample(at=1.0)  # before the metric exists
        obs.counter("t_ring_late_total").inc(4)
        ring.sample(at=2.0)
        assert ring.series("t_ring_late_total") == [(1.0, 0.0), (2.0, 4.0)]
        assert "t_ring_late_total" in ring.names()

    def test_clear_empties(self, live):
        ring = obs.get_ring()
        ring.sample()
        ring.clear()
        assert len(ring) == 0

    def test_capacity_must_be_positive(self):
        from repro.obs.metrics import MetricError, TimeSeriesRing

        with pytest.raises(MetricError):
            TimeSeriesRing(capacity=0)
