"""Cluster control plane: placement map, routed gateway, quorum commit.

Unit coverage for :mod:`repro.cluster` — the map's fencing and
round-robin planning, the gateway's lag-ranked read routing and
epoch-triggered write failover (against in-memory fakes), plus one
small end-to-end quorum cluster and one seeded chaos audit.
"""

import socket

import pytest

from repro import obs
from repro.cluster import (
    ClusterGateway,
    ClusterSupervisor,
    NodeInfo,
    PlacementMap,
    plan_placement,
    run_cluster_chaos,
    traced_factory,
)
from repro.faultline.chaos import reference_digest
from repro.replicate import ReplicaLagging
from repro.replicate.protocol import R_ERROR, R_HANDSHAKE, encode, make_decoder
from repro.serve import session_factory_for_script
from repro.serve.manager import shard_for
from repro.students import cohort_scripts

N_SHARDS = 2


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=23)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


class TestPlacementMap:
    def _nodes(self, n=3):
        primary = NodeInfo("p0", "primary", "127.0.0.1", 4000)
        standbys = [NodeInfo(f"s{k}") for k in range(n)]
        return primary, standbys

    def test_plan_interleaves_subsets(self):
        primary, standbys = self._nodes(3)
        pmap = plan_placement(4, primary, standbys, replicas_per_shard=2)
        for shard in range(4):
            entry = pmap.assignment(shard)
            assert entry.primary == "p0"
            assert len(entry.standbys) == 2
            assert len(set(entry.standbys)) == 2
        # rotation: every standby carries some subset of the keyspace
        for node in standbys:
            assert pmap.shards_of(node.node_id)

    def test_every_shard_survives_any_single_standby_loss(self):
        primary, standbys = self._nodes(3)
        pmap = plan_placement(4, primary, standbys, replicas_per_shard=2)
        for victim in standbys:
            for shard in range(4):
                survivors = [
                    s for s in pmap.standbys_for(shard)
                    if s != victim.node_id
                ]
                assert survivors, (
                    f"shard {shard} dies with {victim.node_id}"
                )

    def test_assign_bumps_version(self):
        pmap = PlacementMap(1)
        v0 = pmap.version
        pmap.assign(0, "p0", ("s0",))
        assert pmap.version == v0 + 1

    def test_advance_fences_stale_epochs(self):
        primary, standbys = self._nodes(2)
        pmap = plan_placement(2, primary, standbys)
        with pytest.raises(ValueError):
            pmap.advance(0, "s0", epoch=1)  # not strictly newer
        entry = pmap.advance(0, "s0", epoch=2)
        assert entry.primary == "s0"
        assert "s0" not in entry.standbys
        assert pmap.node("s0").kind == "primary"
        # shard 1 untouched
        assert pmap.primary_for(1) == "p0"

    def test_shards_of_covers_primary_and_standby_roles(self):
        primary, standbys = self._nodes(2)
        pmap = plan_placement(2, primary, standbys)
        assert pmap.shards_of("p0") == [0, 1]
        pmap.advance(1, "s0", epoch=2)
        assert 1 in pmap.shards_of("s0")
        assert pmap.shards_of("p0") == [0]

    def test_save_load_round_trip(self, tmp_path):
        primary, standbys = self._nodes(3)
        pmap = plan_placement(3, primary, standbys, replicas_per_shard=2)
        pmap.advance(1, "s1", epoch=5)
        path = pmap.save(tmp_path)
        assert path.name == "PLACEMENT.json"
        loaded = PlacementMap.load(tmp_path)
        assert loaded.to_dict() == pmap.to_dict()
        assert loaded.epoch_of(1) == 5

    def test_primary_address(self):
        primary, standbys = self._nodes(1)
        pmap = plan_placement(1, primary, standbys)
        assert pmap.primary_address(0) == "127.0.0.1:4000"
        assert pmap.primary_address() == "127.0.0.1:4000"
        assert PlacementMap(1).primary_address() is None


class _FakePrimary:
    """Write target: submits recorded, no query surface (like a
    SessionManager, which must never serve placement-routed reads)."""

    def __init__(self):
        self.submitted = []

    def submit(self, player_id, factory):
        self.submitted.append(player_id)
        return True


class _FakeStandby:
    def __init__(self, lag=0, view=None, lagging=None, alive=True):
        self._lag = lag
        self._view = view
        self._lagging = lagging
        self.alive = alive
        self.queried = []

    def lag(self, shard):
        return self._lag

    def query(self, player_id):
        self.queried.append(player_id)
        if self._lagging is not None:
            raise self._lagging
        if self._view is None:
            raise KeyError(player_id)
        return dict(self._view)


class TestClusterGateway:
    def _gateway(self, n_shards=1):
        pmap = plan_placement(
            n_shards, NodeInfo("p0", "primary"),
            [NodeInfo("s0"), NodeInfo("s1")],
        )
        return ClusterGateway(pmap), pmap

    def test_submit_routes_to_mapped_primary(self):
        gw, _ = self._gateway()
        primary = _FakePrimary()
        gw.register("p0", primary)
        assert gw.submit("player", lambda pid: None)
        assert primary.submitted == ["player"]

    def test_submit_unregistered_primary_raises(self):
        gw, _ = self._gateway()
        with pytest.raises(KeyError):
            gw.submit("player", lambda pid: None)

    def test_query_prefers_least_lagged_standby(self):
        gw, _ = self._gateway()
        slow = _FakeStandby(lag=9, view={"status": "done"})
        fast = _FakeStandby(lag=0, view={"status": "done"})
        gw.register("p0", _FakePrimary())
        gw.register("s0", slow)
        gw.register("s1", fast)
        view = gw.query("player")
        assert view["node"] == "s1"
        assert fast.queried and not slow.queried
        assert view["placement_version"] == gw.placement.version

    def test_query_falls_through_lagging_standby(self):
        gw, _ = self._gateway()
        refusing = _FakeStandby(
            lag=0, lagging=ReplicaLagging(0, lag_ticks=7, bound=2)
        )
        answering = _FakeStandby(lag=3, view={"status": "done"})
        gw.register("s0", refusing)
        gw.register("s1", answering)
        assert gw.query("player")["node"] == "s1"

    def test_query_reraises_smallest_lag(self):
        gw, _ = self._gateway()
        gw.register("s0", _FakeStandby(
            lagging=ReplicaLagging(0, lag_ticks=50, bound=2)))
        gw.register("s1", _FakeStandby(
            lagging=ReplicaLagging(0, lag_ticks=4, bound=2)))
        with pytest.raises(ReplicaLagging) as err:
            gw.query("player")
        assert err.value.lag_ticks == 4
        assert err.value.shard == 0

    def test_query_unknown_everywhere_is_key_error(self):
        gw, _ = self._gateway()
        gw.register("s0", _FakeStandby())  # raises KeyError
        with pytest.raises(KeyError):
            gw.query("player")

    def test_dead_standby_is_last_resort(self):
        gw, _ = self._gateway()
        dead = _FakeStandby(lag=0, view={"status": "done"}, alive=False)
        lagged = _FakeStandby(lag=100, view={"status": "done"})
        gw.register("s0", dead)
        gw.register("s1", lagged)
        assert gw.query("player")["node"] == "s1"

    def test_epoch_advance_reroutes_next_write(self, live):
        gw, pmap = self._gateway()
        old = _FakePrimary()
        new = _FakePrimary()
        gw.register("p0", old)
        gw.register("s0", new)
        assert gw.submit("player", lambda pid: None)
        pmap.advance(0, "s0", epoch=2)
        before = _counter_total("repro_placement_failover_routes_total")
        assert gw.submit("player", lambda pid: None)
        assert old.submitted == ["player"]
        assert new.submitted == ["player"]
        after = _counter_total("repro_placement_failover_routes_total")
        assert after == before + 1


def _counter_total(name):
    from repro.obs import metrics as _metrics

    counter = _metrics.REGISTRY.get(name)
    return counter.total() if counter is not None else 0.0


class TestQuorumCluster:
    def test_quorum_end_to_end(self, classroom_game, scripts, live):
        with ClusterSupervisor(
            classroom_game, n_shards=N_SHARDS, n_standbys=3,
            replicas_per_shard=2, quorum=1,
        ) as supervisor:
            for k, script in enumerate(scripts):
                assert supervisor.submit(
                    f"{script.player_id}#q{k}",
                    traced_factory(
                        session_factory_for_script(classroom_game, script)
                    ),
                )
            assert supervisor.manager.drain(timeout=60)
            assert supervisor.wait_caught_up(timeout_s=30)
            # quorum acks actually flowed
            assert _counter_total("repro_quorum_acks_total") > 0
            # placement-routed read answers from a standby mirror
            script = scripts[0]
            view = supervisor.query(f"{script.player_id}#q0")
            assert view["status"] == "done"
            assert view["node"].startswith("standby-")
            assert view["digest"] == reference_digest(
                classroom_game, script.ops, script.dt, len(script.ops),
            )
            status = supervisor.status()
            assert status["quorum"] == 1
            assert status["primary"]["alive"]
            # every standby subscribed to its planned subset only
            subset_sizes = []
            for node_id, info in status["standbys"].items():
                assert info["subscribed"] == (
                    supervisor.placement.shards_of(node_id)
                )
                subset_sizes.append(len(info["subscribed"]))
            # 2 replicas/shard over 3 standbys x 2 shards = 4 slots:
            # the subsets genuinely interleave, nobody mirrors it all
            assert sum(subset_sizes) == N_SHARDS * 2
            assert min(subset_sizes) < N_SHARDS

    def test_handshake_rejects_unsubscribed_shard(self, classroom_game):
        with ClusterSupervisor(
            classroom_game, n_shards=N_SHARDS, n_standbys=1,
        ) as supervisor:
            source = supervisor.source
            with socket.create_connection(
                (source.host, source.port), timeout=5
            ) as conn:
                conn.sendall(encode(R_HANDSHAKE, {
                    "shard": 1, "start": 1, "epoch": 1,
                    "subs": [0], "client": "tester",
                }))
                decoder = make_decoder()
                frames = []
                while not frames:
                    data = conn.recv(65536)
                    assert data, "source hung up without an error frame"
                    frames = decoder.feed(data)
                ftype, payload = frames[0]
        assert ftype == R_ERROR
        assert payload["code"] == "bad_subscription"

    def test_replica_lagging_carries_routing_attrs(self):
        err = ReplicaLagging(3, lag_ticks=11, bound=4)
        assert (err.shard, err.lag_ticks, err.bound) == (3, 11, 4)
        assert "shard 3" in str(err) and "11" in str(err)


class TestClusterChaos:
    def test_seeded_chaos_audit_passes(self, classroom_game):
        report = run_cluster_chaos(
            seed=4321, sessions=6, n_shards=N_SHARDS,
            n_standbys=3, quorum=2, game=classroom_game,
        )
        assert report.lost_records == 0
        assert report.bit_identical
        assert report.caught_up
        assert report.queries_ok == report.queries_total > 0
        assert report.post_failover_submit_ok
        assert report.quorum_timeouts == 0
        assert report.ok
        doc = report.to_dict()
        assert doc["standby_killed"] == "standby-3"
        assert doc["promoted"] in ("standby-1", "standby-2")
        import json

        json.dumps(doc)  # the CLI writes this verbatim

    def test_quorum_must_leave_a_survivor(self, classroom_game):
        with pytest.raises(ValueError):
            run_cluster_chaos(
                sessions=2, n_shards=1, n_standbys=2, quorum=2,
                game=classroom_game,
            )
