"""Tests for clocked playback (repro.video.player)."""

import numpy as np
import pytest

from repro.video import (
    Frame,
    FrameSize,
    PlaybackState,
    PlayerError,
    SegmentPlayer,
    SimulatedClock,
    VideoReader,
    VideoWriter,
)

SIZE = FrameSize(8, 6)
FPS = 10.0


@pytest.fixture()
def reader():
    w = VideoWriter(SIZE, fps=FPS, codec_name="raw")
    for seed in (1, 2):
        rng = np.random.default_rng(seed)
        w.add_segment(
            [Frame(rng.integers(0, 256, SIZE.shape, dtype=np.uint8)) for _ in range(5)]
        )
    return VideoReader(w.tobytes())


@pytest.fixture()
def player(reader):
    clock = SimulatedClock()
    return SegmentPlayer(reader, clock=clock), clock


class TestClock:
    def test_advance(self):
        c = SimulatedClock(5.0)
        assert c.now() == 5.0
        c.advance(2.5)
        assert c.now() == 7.5

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestPlayback:
    def test_requires_play_first(self, player):
        p, _ = player
        with pytest.raises(PlayerError):
            p.position()
        assert p.tick() is None  # idle tick is a no-op

    def test_frame_progression(self, player, reader):
        p, clock = player
        p.play(0)
        assert p.position() == 0
        clock.advance(0.25)  # 2.5 frame times
        assert p.position() == 2
        assert p.current_frame() == reader.decode_segment(0)[2]

    def test_tick_emits_once_per_frame(self, player):
        p, clock = player
        p.play(0)
        assert p.tick() is not None
        assert p.tick() is None  # same frame again
        clock.advance(1 / FPS)
        assert p.tick() is not None

    def test_on_frame_callback(self, reader):
        clock = SimulatedClock()
        seen = []
        p = SegmentPlayer(reader, clock=clock, on_frame=lambda f, i: seen.append(i))
        p.play(0)
        p.tick()
        clock.advance(2 / FPS)
        p.tick()
        assert seen == [0, 2]

    def test_looping(self, player):
        p, clock = player
        p.play(0)  # 5 frames
        clock.advance(0.7)  # frame 7 -> wraps to 2
        assert p.position() == 2
        assert not p.finished()

    def test_non_looping_finishes(self, reader):
        clock = SimulatedClock()
        p = SegmentPlayer(reader, clock=clock, loop_segment=False)
        p.play(0)
        clock.advance(0.7)
        assert p.finished()
        assert p.position() == 4  # clamped to last frame
        p.tick()
        assert p.state == PlaybackState.FINISHED

    def test_switch_segment_counts(self, player, reader):
        p, clock = player
        p.play(0)
        p.play(1)
        assert p.switch_count == 1
        assert p.current_segment == 1
        assert p.current_frame() == reader.decode_segment(1)[0]


class TestPauseResumeSeek:
    def test_pause_freezes_position(self, player):
        p, clock = player
        p.play(0)
        clock.advance(0.2)
        p.pause()
        pos = p.position()
        clock.advance(1.0)
        assert p.position() == pos
        p.resume()
        clock.advance(0.1)
        assert p.position() == pos + 1

    def test_pause_requires_playing(self, player):
        p, clock = player
        p.play(0)
        p.pause()
        with pytest.raises(PlayerError):
            p.pause()

    def test_resume_requires_paused(self, player):
        p, _ = player
        p.play(0)
        with pytest.raises(PlayerError):
            p.resume()

    def test_seek(self, player, reader):
        p, clock = player
        p.play(0)
        p.seek(3)
        assert p.position() == 3
        assert p.current_frame() == reader.decode_segment(0)[3]

    def test_seek_bounds(self, player):
        p, _ = player
        p.play(0)
        with pytest.raises(PlayerError):
            p.seek(5)
        with pytest.raises(PlayerError):
            p.seek(-1)

    def test_seek_while_paused_stays_paused(self, player):
        p, clock = player
        p.play(0)
        p.pause()
        p.seek(2)
        clock.advance(1.0)
        assert p.position() == 2
        assert p.state == PlaybackState.PAUSED
