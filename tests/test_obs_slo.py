"""Tests for SLO rules: quantiles, parsing, evaluation, the CLI gate."""

import json
import math
from pathlib import Path

import pytest

from repro.obs.slo import (
    SloError,
    SloRule,
    _parse_mini_toml,
    evaluate_slos,
    histogram_quantile,
    load_rules,
    parse_slo_file,
)

EXAMPLES_SLO = Path(__file__).resolve().parent.parent / "examples" / "slo.toml"


def hist_entry(buckets, counts, total=None, count=None):
    return {
        "name": "h",
        "kind": "histogram",
        "help": "",
        "buckets": list(buckets),
        "series": [
            {
                "labels": {},
                "counts": list(counts),
                "sum": total if total is not None else 0.0,
                "count": count if count is not None else sum(counts),
            }
        ],
    }


def counter_entry(name, value, labels=None):
    return {
        "name": name,
        "kind": "counter",
        "help": "",
        "series": [{"labels": labels or {}, "value": value}],
    }


def snap(*entries):
    return {"enabled": True, "metrics": list(entries)}


class TestHistogramQuantile:
    def test_picks_covering_bucket_bound(self):
        # 10 samples: 9 in <=0.001, 1 in <=0.01
        entry = hist_entry([0.001, 0.01, 0.1], [9, 1, 0, 0])
        assert histogram_quantile(entry, 0.5) == 0.001
        assert histogram_quantile(entry, 0.9) == 0.001
        assert histogram_quantile(entry, 0.95) == 0.01

    def test_overflow_bucket_is_inf(self):
        entry = hist_entry([0.001], [0, 5])
        assert histogram_quantile(entry, 0.95) == math.inf

    def test_no_samples_returns_none(self):
        entry = hist_entry([0.001, 0.01], [0, 0, 0])
        assert histogram_quantile(entry, 0.95) is None

    def test_invalid_quantile_rejected(self):
        entry = hist_entry([0.001], [1, 0])
        with pytest.raises(SloError):
            histogram_quantile(entry, 0.0)
        with pytest.raises(SloError):
            histogram_quantile(entry, 1.5)


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(SloError, match="unknown rule kind"):
            SloRule(kind="p42", op="<", value=1, metric="m")

    def test_unknown_op(self):
        with pytest.raises(SloError, match="unknown op"):
            SloRule(kind="total", op="~", value=1, metric="m")

    def test_ratio_needs_numerator_and_denominator(self):
        with pytest.raises(SloError, match="numerator"):
            SloRule(kind="ratio", op=">=", value=0.5)

    def test_non_ratio_needs_metric(self):
        with pytest.raises(SloError, match="need a 'metric'"):
            SloRule(kind="total", op="<", value=1)

    def test_title_falls_back_to_shape(self):
        rule = SloRule(kind="p95", op="<", value=0.005, metric="m")
        assert "p95(m)" in rule.title


class TestEvaluation:
    def test_total_pass_and_fail(self):
        s = snap(counter_entry("errs", 0.0))
        results, ok = evaluate_slos(
            [SloRule(kind="total", op="==", value=0, metric="errs")], s
        )
        assert ok and results[0].ok and results[0].observed == 0.0
        results, ok = evaluate_slos(
            [SloRule(kind="total", op=">", value=0, metric="errs")], s
        )
        assert not ok

    def test_missing_metric_fails_unless_allow_empty(self):
        s = snap()
        (res,), ok = evaluate_slos(
            [SloRule(kind="total", op="==", value=0, metric="ghost")], s
        )
        assert not ok and res.observed is None and "missing" in res.detail
        (res,), ok = evaluate_slos(
            [SloRule(kind="total", op="==", value=0, metric="ghost",
                     allow_empty=True)],
            s,
        )
        assert ok

    def test_quantile_rule_against_histogram(self):
        s = snap(
            {
                **hist_entry([0.001, 0.01, 0.1], [90, 8, 2, 0]),
                "name": "lat",
            }
        )
        (res,), ok = evaluate_slos(
            [SloRule(kind="p95", op="<=", value=0.01, metric="lat")], s
        )
        assert ok and res.observed == 0.01

    def test_quantile_on_counter_is_an_error(self):
        s = snap(counter_entry("c", 1.0))
        with pytest.raises(SloError, match="need a histogram"):
            evaluate_slos([SloRule(kind="p95", op="<", value=1, metric="c")], s)

    def test_mean_rule(self):
        s = snap({**hist_entry([1.0], [4, 0], total=2.0, count=4), "name": "lat"})
        (res,), ok = evaluate_slos(
            [SloRule(kind="mean", op="<=", value=0.5, metric="lat")], s
        )
        assert ok and res.observed == 0.5

    def test_ratio_rule(self):
        s = snap(
            counter_entry("hits", 3.0), counter_entry("misses", 1.0)
        )
        rule = SloRule(
            kind="ratio", op=">=", value=0.5,
            numerator="hits", denominator=("hits", "misses"),
        )
        (res,), ok = evaluate_slos([rule], s)
        assert ok and res.observed == 0.75

    def test_ratio_zero_denominator_is_empty(self):
        s = snap(counter_entry("hits", 0.0), counter_entry("misses", 0.0))
        rule = SloRule(
            kind="ratio", op=">=", value=0.5,
            numerator="hits", denominator=("hits", "misses"),
        )
        (res,), ok = evaluate_slos([rule], s)
        assert not ok and res.observed is None

    def test_label_filtered_total(self):
        entry = {
            "name": "c", "kind": "counter", "help": "",
            "series": [
                {"labels": {"policy": "lru"}, "value": 5.0},
                {"labels": {"policy": "fifo"}, "value": 7.0},
            ],
        }
        rule = SloRule(
            kind="total", op="==", value=5, metric="c",
            labels={"policy": "lru"},
        )
        (res,), ok = evaluate_slos([rule], snap(entry))
        assert ok and res.observed == 5.0


class TestRuleFiles:
    def test_load_rules_rejects_unknown_keys(self):
        with pytest.raises(SloError, match="unknown keys"):
            load_rules({"rule": [{"metric": "m", "value": 1, "frobnicate": 2}]})

    def test_load_rules_requires_rules(self):
        with pytest.raises(SloError, match="no \\[\\[rule\\]\\]"):
            load_rules({})

    def test_parse_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"rule": [{"metric": "m", "kind": "total", "op": "<", "value": 9}]}
        ))
        rules = parse_slo_file(path)
        assert len(rules) == 1 and rules[0].metric == "m"

    def test_parse_toml_file(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rule]]\n'
            'name = "one"\n'
            'metric = "m"\n'
            'kind = "p95"\n'
            'op = "<"\n'
            'value = 0.005\n'
            '\n'
            '[[rule]]\n'
            'kind = "ratio"\n'
            'numerator = "hits"\n'
            'denominator = ["hits", "misses"]\n'
            'op = ">="\n'
            'value = 0.05\n'
            'allow_empty = true\n'
        )
        rules = parse_slo_file(path)
        assert [r.kind for r in rules] == ["p95", "ratio"]
        assert rules[1].denominator == ("hits", "misses")
        assert rules[1].allow_empty is True

    def test_mini_toml_parser_directly(self):
        data = _parse_mini_toml(
            "# comment\n"
            "[[rule]]\n"
            'name = "a" \n'
            "value = 0.5\n"
            "count = 3\n"
            "flag = true  # trailing comment\n"
            'arr = ["x", "y"]\n'
            "[[rule]]\n"
            'name = "b"\n'
            "value = 1\n"
        )
        assert len(data["rule"]) == 2
        first = data["rule"][0]
        assert first == {
            "name": "a", "value": 0.5, "count": 3, "flag": True,
            "arr": ["x", "y"],
        }
        assert data["rule"][1]["name"] == "b"

    def test_mini_toml_rejects_garbage(self):
        with pytest.raises(SloError):
            _parse_mini_toml("not a kv line\n")

    def test_example_rules_file_parses(self):
        rules = parse_slo_file(EXAMPLES_SLO)
        assert len(rules) >= 5
        kinds = {r.kind for r in rules}
        assert "p95" in kinds and "ratio" in kinds

    def test_example_rules_cover_cluster_quorum(self):
        """The cluster rules exist, target the right series, and are
        allow_empty (the series only exist while a cluster runs)."""
        rules = parse_slo_file(EXAMPLES_SLO)
        cluster = [
            r for r in rules
            if (r.metric or "").startswith(("repro_quorum_",
                                            "repro_placement_"))
        ]
        assert len(cluster) >= 3
        assert all(r.allow_empty for r in cluster)
        metrics = {r.metric for r in cluster}
        assert "repro_quorum_timeouts_total" in metrics
        assert "repro_quorum_wait_seconds" in metrics
        assert "repro_placement_reads_total" in metrics


class TestCliGate:
    """`repro obs check` exits 0 on pass, 1 on breach, 2 on usage errors."""

    @pytest.fixture
    def snapshot_file(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snap(counter_entry("errs", 2.0))))
        return path

    def _rules_file(self, tmp_path, op, value):
        path = tmp_path / "rules.toml"
        path.write_text(
            "[[rule]]\n"
            'metric = "errs"\n'
            'kind = "total"\n'
            f'op = "{op}"\n'
            f"value = {value}\n"
        )
        return path

    def test_passing_rules_exit_zero(self, tmp_path, snapshot_file, capsys):
        from repro.cli import main

        rules = self._rules_file(tmp_path, "==", 2)
        code = main([
            "obs", "check", "--slo", str(rules),
            "--snapshot", str(snapshot_file), "--no-demo",
        ])
        assert code == 0
        assert "SLO check passed" in capsys.readouterr().out

    def test_breached_rules_exit_one(self, tmp_path, snapshot_file, capsys):
        from repro.cli import main

        rules = self._rules_file(tmp_path, "==", 0)
        code = main([
            "obs", "check", "--slo", str(rules),
            "--snapshot", str(snapshot_file), "--no-demo",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_slo_flag_exits_two(self, capsys):
        from repro.cli import main

        assert main(["obs", "check", "--no-demo"]) == 2

    def test_unreadable_rules_exit_two(self, tmp_path, snapshot_file):
        from repro.cli import main

        assert main([
            "obs", "check", "--slo", str(tmp_path / "missing.toml"),
            "--snapshot", str(snapshot_file), "--no-demo",
        ]) == 2
