"""Tests for the inventory and game state (incl. save/load properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import GameState, Inventory, InventoryError, PopupRecord, StateError


class TestInventory:
    def test_add_and_stack(self):
        inv = Inventory()
        inv.add("coin", name="Coin")
        inv.add("coin")
        assert inv.count("coin") == 2
        assert inv.slot_count == 1
        assert inv.total_items == 2

    def test_capacity_counts_slots_not_items(self):
        inv = Inventory(capacity=2)
        inv.add("a")
        inv.add("a")
        inv.add("b")
        with pytest.raises(InventoryError):
            inv.add("c")
        inv.add("a")  # stacking still fine

    def test_remove_drops_empty_slot(self):
        inv = Inventory()
        inv.add("a")
        inv.remove("a")
        assert not inv.has("a")
        with pytest.raises(InventoryError):
            inv.remove("a")

    def test_selection(self):
        inv = Inventory()
        inv.add("a")
        inv.select("a")
        assert inv.selected == "a"
        inv.deselect()
        assert inv.selected is None
        with pytest.raises(InventoryError):
            inv.select("ghost")

    def test_selection_cleared_when_item_consumed(self):
        inv = Inventory()
        inv.add("a")
        inv.select("a")
        inv.remove("a")
        assert inv.selected is None

    def test_rewards_shelf(self):
        inv = Inventory()
        inv.add("badge", is_reward=True)
        inv.add("coin")
        assert [s.item_id for s in inv.rewards] == ["badge"]

    def test_dict_roundtrip(self):
        inv = Inventory(capacity=5)
        inv.add("a", name="Item A")
        inv.add("a")
        inv.add("badge", is_reward=True)
        inv.select("a")
        inv2 = Inventory.from_dict(inv.to_dict())
        assert inv2.count("a") == 2
        assert inv2.selected == "a"
        assert inv2.rewards[0].item_id == "badge"
        assert inv2.capacity == 5

    def test_invalid_capacity(self):
        with pytest.raises(InventoryError):
            Inventory(capacity=0)

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.sampled_from("abcd")),
        max_size=40,
    ))
    @settings(max_examples=60, deadline=None)
    def test_counts_never_negative_property(self, ops):
        """Property: counts track adds minus successful removes, >= 0."""
        inv = Inventory(capacity=10)
        shadow = {k: 0 for k in "abcd"}
        for op, item in ops:
            if op == "add":
                inv.add(item)
                shadow[item] += 1
            else:
                if shadow[item] > 0:
                    inv.remove(item)
                    shadow[item] -= 1
                else:
                    with pytest.raises(InventoryError):
                        inv.remove(item)
        for k, n in shadow.items():
            assert inv.count(k) == n


class TestPopupRecord:
    def test_kinds(self):
        PopupRecord("text", "x", 0.0)
        with pytest.raises(StateError):
            PopupRecord("video", "x", 0.0)

    def test_equality_ignores_time(self):
        assert PopupRecord("text", "x", 1.0) == PopupRecord("text", "x", 9.0)


class TestGameState:
    def test_initial(self):
        st_ = GameState("start")
        assert st_.current_scenario == "start"
        assert st_.has_visited("start")
        assert not st_.finished

    def test_condition_context_protocol(self):
        st_ = GameState("s")
        st_.inventory.add("ram")
        st_.set_flag("go", True)
        st_.prop_overrides[("pc", "state")] = "fixed"
        assert st_.has_item("ram")
        assert st_.item_count("ram") == 1
        assert st_.get_flag("go")
        assert not st_.get_flag("nope")
        assert st_.get_prop("pc", "state") == "fixed"
        assert st_.get_prop("pc", "missing") is False

    def test_base_props_overridden_by_session(self):
        st_ = GameState("s")
        st_.base_props[("pc", "state")] = "broken"
        assert st_.get_prop("pc", "state") == "broken"
        st_.prop_overrides[("pc", "state")] = "fixed"
        assert st_.get_prop("pc", "state") == "fixed"

    def test_switch_resets_dwell(self):
        st_ = GameState("a")
        st_.advance_time(5.0)
        st_.fired_timers.add("t1")
        st_.switch_to("b")
        assert st_.current_scenario == "b"
        assert st_.scenario_time == 0.0
        assert st_.fired_timers == set()
        assert st_.has_visited("a") and st_.has_visited("b")
        assert st_.play_time == 5.0

    def test_end_and_no_further_transitions(self):
        st_ = GameState("a")
        st_.end("won")
        assert st_.finished and st_.outcome == "won"
        with pytest.raises(StateError):
            st_.end("lost")
        with pytest.raises(StateError):
            st_.switch_to("b")

    def test_popup_stack(self):
        st_ = GameState("a")
        st_.push_popup("text", "one", 0.0)
        st_.push_popup("web", "two", 1.0)
        assert st_.modal_active
        assert st_.dismiss_popup().content == "two"
        assert st_.dismiss_popup().content == "one"
        assert st_.dismiss_popup() is None
        assert not st_.modal_active

    def test_score_validation(self):
        st_ = GameState("a")
        st_.add_score(5)
        with pytest.raises(StateError):
            st_.add_score(-1)

    def test_time_validation(self):
        st_ = GameState("a")
        with pytest.raises(StateError):
            st_.advance_time(-0.1)

    def test_visibility_overrides(self):
        st_ = GameState("a")
        assert st_.object_visible("x", True)
        st_.visibility["x"] = False
        assert not st_.object_visible("x", True)

    def test_full_roundtrip(self):
        st_ = GameState("a")
        st_.inventory.add("ram", name="RAM")
        st_.set_flag("found", True)
        st_.add_score(12)
        st_.switch_to("b")
        st_.prop_overrides[("pc", "state")] = "fixed"
        st_.base_props[("pc", "brand")] = "acme"
        st_.fired_once.add("ev-1")
        st_.visibility["ram"] = False
        st_.push_popup("text", "hello", 3.0)
        st_.web_visits.append("https://x/y")
        st_.avatar_xy = (12.5, 30.0)
        st_.advance_time(9.0)

        st2 = GameState.from_dict(st_.to_dict())
        assert st2.to_dict() == st_.to_dict()
        assert st2.get_prop("pc", "brand") == "acme"
        assert st2.inventory.count("ram") == 1

    @given(
        flags=st.dictionaries(st.sampled_from("abcd"), st.booleans(), max_size=4),
        score=st.integers(0, 500),
        visited=st.sets(st.sampled_from(["s1", "s2", "s3"]), min_size=0, max_size=3),
        items=st.lists(st.sampled_from(["i1", "i2"]), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_save_load_identity_property(self, flags, score, visited, items):
        """Property: to_dict/from_dict is observationally the identity."""
        st_ = GameState("home")
        st_.flags = dict(flags)
        st_.score = score
        st_.visited |= visited
        for i in items:
            st_.inventory.add(i)
        st2 = GameState.from_dict(st_.to_dict())
        assert st2.to_dict() == st_.to_dict()
