"""Tests for tracing spans: nesting, exception safety, disabled mode."""

import json

import pytest

from repro import obs
from repro.obs.tracing import Tracer, _NULL_CONTEXT


@pytest.fixture
def tracer():
    """A private tracer with recording enabled; restores disabled."""
    was = obs.enabled()
    obs.enable()
    yield Tracer()
    obs.set_enabled(was)


class TestNesting:
    def test_parent_child_structure(self, tracer):
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert len(tracer.finished) == 1
        root = tracer.finished[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_sequential_roots_all_kept(self, tracer):
        for i in range(3):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["op0", "op1", "op2"]

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_durations_nest_sanely(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.finished[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert outer.duration >= inner.duration >= 0.0

    def test_attributes(self, tracer):
        with tracer.span("op", gesture="click") as sp:
            sp.set_attribute("bindings", 2)
        assert tracer.finished[0].attributes == {"gesture": "click", "bindings": 2}


class TestExceptionSafety:
    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails"):
                raise ValueError("boom")
        sp = tracer.finished[0]
        assert sp.status == "error"
        assert sp.error == "ValueError: boom"
        assert sp.end is not None  # end stamped despite the raise

    def test_exception_in_child_unwinds_to_parent(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("inner")
        root = tracer.finished[0]
        assert root.status == "error"
        assert root.children[0].status == "error"
        assert tracer.current() is None  # stack fully unwound

    def test_decorator_traces_and_reraises(self, tracer):
        # The decorator uses the global tracer; check against it.
        g = obs.get_tracer()
        g.reset()

        @obs.trace("decorated")
        def work(x):
            """docstring survives"""
            if x < 0:
                raise KeyError(x)
            return x * 2

        assert work(3) == 6
        with pytest.raises(KeyError):
            work(-1)
        assert work.__doc__ == "docstring survives"
        assert [s.name for s in g.finished] == ["decorated", "decorated"]
        assert g.finished[1].status == "error"
        g.reset()


class TestBoundsAndExport:
    def test_max_finished_drops_oldest(self):
        obs.enable()
        try:
            t = Tracer(max_finished=2)
            for i in range(5):
                with t.span(f"s{i}"):
                    pass
            assert [s.name for s in t.finished] == ["s3", "s4"]
            assert t.dropped == 3
        finally:
            obs.disable()

    def test_iter_spans_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]

    def test_to_json_roundtrips(self, tracer):
        with tracer.span("root", kind="demo"):
            with tracer.span("leaf"):
                pass
        data = json.loads(tracer.to_json())
        assert len(data) == 1
        assert data[0]["name"] == "root"
        assert data[0]["status"] == "ok"
        assert data[0]["attributes"] == {"kind": "demo"}
        assert data[0]["children"][0]["name"] == "leaf"
        assert data[0]["duration_s"] >= 0.0

    def test_reset(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.finished == []
        assert tracer.dropped == 0


class TestDisabledMode:
    def test_span_is_shared_noop_when_disabled(self):
        obs.disable()
        t = Tracer()
        ctx = t.span("ignored")
        assert ctx is _NULL_CONTEXT
        with ctx as sp:
            sp.set_attribute("k", "v")  # accepted, discarded
        assert t.finished == []

    def test_decorator_is_passthrough_when_disabled(self):
        obs.disable()
        g = obs.get_tracer()
        g.reset()

        @obs.trace()
        def fn():
            return 7

        assert fn() == 7
        assert g.finished == []


class TestCorrelationIds:
    def test_root_gets_fresh_trace_id(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id and b.trace_id and a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_children_inherit_trace_id(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert child.trace_id == root.trace_id == grand.trace_id
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        ids = {root.span_id, child.span_id, grand.span_id}
        assert len(ids) == 3  # span ids are unique

    def test_ids_are_64bit_hex(self, tracer):
        with tracer.span("x") as sp:
            pass
        assert len(sp.span_id) == 16
        int(sp.span_id, 16)  # must parse as hex
        assert len(sp.trace_id) == 16

    def test_to_dict_carries_ids(self, tracer):
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        root = tracer.to_dicts()[0]
        assert root["trace_id"] == root["children"][0]["trace_id"]
        assert root["children"][0]["parent_id"] == root["span_id"]


class TestResetInterleaving:
    """Regression: a reset while spans are open must not resurrect
    pre-reset parents or record stale spans (the generation guard)."""

    def test_span_open_across_reset_unwinds_inertly(self, tracer):
        with tracer.span("outer"):
            tracer.reset()
        assert tracer.finished == []
        assert tracer.current() is None

    def test_new_spans_after_reset_are_roots(self, tracer):
        with tracer.span("doomed"):
            tracer.reset()
            with tracer.span("fresh") as fresh:
                pass
            # The post-reset span is a root: no stale parent attached.
            assert fresh.parent_id is None
        assert [s.name for s in tracer.finished] == ["fresh"]
        # The doomed span's exit must not clobber what came after.
        assert tracer.current() is None
        with tracer.span("later"):
            pass
        assert [s.name for s in tracer.finished] == ["fresh", "later"]

    def test_deep_interleave(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.reset()
                with tracer.span("c"):
                    pass
        assert [s.name for s in tracer.finished] == ["c"]
        assert tracer.current() is None
