"""Tests for project persistence, templates, wizard and effort ledger."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SKILL_WEIGHTS,
    AuthoringLedger,
    GameWizard,
    WizardError,
    exploration_game,
    fetch_quest_game,
    load_project,
    project_to_dict,
    quiz_game,
    save_project,
    solve,
)
from repro.core.serialize import MEDIA_FILE, PROJECT_JSON
from repro.core.templates import scene_footage
from repro.video import FrameSize

SIZE = FrameSize(48, 36)


class TestSerialize:
    def test_save_creates_files(self, tmp_path, classroom_wizard):
        save_project(classroom_wizard.project, tmp_path)
        assert (tmp_path / PROJECT_JSON).exists()
        assert (tmp_path / MEDIA_FILE).exists()

    def test_roundtrip_structure_identical(self, tmp_path, classroom_wizard):
        project = classroom_wizard.project
        save_project(project, tmp_path)
        loaded = load_project(tmp_path)
        assert project_to_dict(loaded) == project_to_dict(project)

    def test_roundtrip_still_winnable(self, tmp_path, classroom_wizard):
        save_project(classroom_wizard.project, tmp_path)
        loaded = load_project(tmp_path)
        assert solve(loaded.compile()).winnable is True

    def test_roundtrip_video_lossless(self, tmp_path, classroom_wizard):
        project = classroom_wizard.project
        save_project(project, tmp_path)
        loaded = load_project(tmp_path)
        for a, b in zip(project.segments, loaded.segments):
            assert a.name == b.name
            assert a.frames == b.frames

    def test_missing_files(self, tmp_path):
        from repro.core import ProjectError

        with pytest.raises(ProjectError):
            load_project(tmp_path)

    def test_version_check(self, tmp_path, classroom_wizard):
        from repro.core import ProjectError

        save_project(classroom_wizard.project, tmp_path)
        meta = json.loads((tmp_path / PROJECT_JSON).read_text())
        meta["format_version"] = 99
        (tmp_path / PROJECT_JSON).write_text(json.dumps(meta))
        with pytest.raises(ProjectError):
            load_project(tmp_path)

    def test_segment_count_mismatch(self, tmp_path, classroom_wizard):
        from repro.core import ProjectError

        save_project(classroom_wizard.project, tmp_path)
        meta = json.loads((tmp_path / PROJECT_JSON).read_text())
        meta["segment_names"] = meta["segment_names"][:-1]
        (tmp_path / PROJECT_JSON).write_text(json.dumps(meta))
        with pytest.raises(ProjectError):
            load_project(tmp_path)


class TestTemplates:
    @pytest.mark.parametrize("n", [1, 3])
    def test_fetch_quest_game_winnable(self, n):
        wiz = fetch_quest_game(n_quests=n, size=SIZE)
        report = wiz.check()
        assert report.ok and report.winnable

    def test_fetch_quest_scales_scenarios(self):
        wiz = fetch_quest_game(n_quests=3, size=SIZE)
        assert len(wiz.project.scenarios) == 4  # hub + 3 places

    def test_quiz_game_winnable_and_structured(self):
        wiz = quiz_game(
            [("Q1?", ["a", "b"], 0), ("Q2?", ["a", "b", "c"], 2)], size=SIZE
        )
        report = wiz.check()
        assert report.ok and report.winnable
        assert len(wiz.project.scenarios) == 3  # lesson + 2 questions

    def test_quiz_validation(self):
        with pytest.raises(ValueError):
            quiz_game([], size=SIZE)
        with pytest.raises(ValueError):
            quiz_game([("Q?", ["only"], 0)], size=SIZE)
        with pytest.raises(ValueError):
            quiz_game([("Q?", ["a", "b"], 5)], size=SIZE)

    def test_exploration_game_winnable(self):
        wiz = exploration_game(n_exhibits=2, size=SIZE)
        report = wiz.check()
        assert report.ok and report.winnable

    def test_templates_deterministic(self):
        a = fetch_quest_game(n_quests=1, size=SIZE, seed=5).build()
        b = fetch_quest_game(n_quests=1, size=SIZE, seed=5).build()
        assert a.container == b.container


class TestWizard:
    def test_build_refuses_broken_game(self):
        wiz = GameWizard("Broken").scene("a", "A", scene_footage(SIZE, 1, duration=4))
        with pytest.raises(WizardError) as exc:
            wiz.build()
        assert "unwinnable" in str(exc.value)

    def test_build_force(self):
        wiz = GameWizard("Broken").scene("a", "A", scene_footage(SIZE, 1, duration=4))
        game = wiz.build(require_valid=False)
        assert game.title == "Broken"

    def test_movie_scene_count_mismatch_message(self):
        import numpy as np

        from repro.video import generate_clip, random_shot_script

        rng = np.random.default_rng(1)
        clip = generate_clip(
            SIZE, random_shot_script(3, rng, size=SIZE, min_duration=8, max_duration=10),
            seed=1,
        )
        with pytest.raises(WizardError) as exc:
            GameWizard("M").movie(clip.frames, scene_titles=["Only one"])
        assert "3 scenes" in str(exc.value)

    def test_movie_happy_path(self):
        import numpy as np

        from repro.video import generate_clip, random_shot_script

        rng = np.random.default_rng(2)
        clip = generate_clip(
            SIZE, random_shot_script(2, rng, size=SIZE, min_duration=8, max_duration=10),
            seed=2,
        )
        wiz = GameWizard("M").movie(clip.frames, scene_titles=["Start", "End"])
        assert set(wiz.project.scenarios) == {"start", "end"}

    def test_helper_requires_lines(self):
        wiz = GameWizard("W").scene("a", "A", scene_footage(SIZE, 1, duration=4))
        with pytest.raises(WizardError):
            wiz.helper("a", "npc", "N", at=(0, 0, 4, 6), lines=[])

    def test_wizard_is_novice_only(self, classroom_wizard):
        report = classroom_wizard.ledger.report()
        assert report.max_skill_required == "novice"
        assert report.total_ops > 10


class TestEffortLedger:
    def test_weights_and_report(self):
        ledger = AuthoringLedger()
        ledger.record("a", "novice")
        ledger.record("b", "programmer")
        ledger.record("c", "programmer")
        report = ledger.report()
        assert report.total_ops == 3
        assert report.weighted_cost == pytest.approx(
            SKILL_WEIGHTS["novice"] + 2 * SKILL_WEIGHTS["programmer"]
        )
        assert report.ops_by_skill == {"novice": 1, "programmer": 2}
        assert report.max_skill_required == "programmer"

    def test_unknown_skill(self):
        ledger = AuthoringLedger()
        with pytest.raises(ValueError):
            ledger.record("a", "wizard-level")

    def test_custom_weights(self):
        ledger = AuthoringLedger(weights={"novice": 2.0, "editor": 4.0,
                                          "programmer": 8.0, "specialist": 16.0})
        ledger.record("a", "editor")
        assert ledger.report().weighted_cost == 4.0

    @given(counts=st.dictionaries(
        st.sampled_from(sorted(SKILL_WEIGHTS)), st.integers(0, 20), min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_weighted_cost_is_linear_property(self, counts):
        """Property: cost == sum(count * weight)."""
        ledger = AuthoringLedger()
        for skill, n in counts.items():
            for _ in range(n):
                ledger.record("op", skill)
        expected = sum(n * SKILL_WEIGHTS[s] for s, n in counts.items())
        assert ledger.report().weighted_cost == pytest.approx(expected)
