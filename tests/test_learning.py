"""Tests for the learning layer: knowledge, assessment, analytics,
packaging and production-cost models."""

import numpy as np
import pytest

from repro.learning import (
    PIPELINES,
    CoursePackage,
    DeliveryPoint,
    KnowledgeError,
    KnowledgeItem,
    KnowledgeMap,
    OutcomeRecord,
    PackageError,
    Question,
    Test,
    compare_pipelines,
    estimate_cost,
    hake_gain,
    load_package,
    mean_ci,
    save_package,
    summarize,
)
from repro.learning.assessment import TestResult


class TestKnowledgeMap:
    def _map(self):
        m = KnowledgeMap()
        m.add(KnowledgeItem("k1", "fact one"),
              [DeliveryPoint(kind="enter", ref="room")])
        m.add(KnowledgeItem("k2", "fact two", weight=2.0),
              [DeliveryPoint(kind="binding", ref="ev-1"),
               DeliveryPoint(kind="time", t0=0, t1=30)])
        return m

    def test_item_validation(self):
        with pytest.raises(KnowledgeError):
            KnowledgeItem("", "x")
        with pytest.raises(KnowledgeError):
            KnowledgeItem("k", "")
        with pytest.raises(KnowledgeError):
            KnowledgeItem("k", "x", weight=0)

    def test_delivery_validation(self):
        with pytest.raises(KnowledgeError):
            DeliveryPoint(kind="osmosis", ref="x")
        with pytest.raises(KnowledgeError):
            DeliveryPoint(kind="enter", ref="")
        with pytest.raises(KnowledgeError):
            DeliveryPoint(kind="time", t0=5, t1=5)

    def test_active_flag(self):
        assert DeliveryPoint(kind="binding", ref="b").active
        assert DeliveryPoint(kind="examine", ref="o").active
        assert not DeliveryPoint(kind="enter", ref="s").active
        assert not DeliveryPoint(kind="time", t0=0, t1=1).active

    def test_duplicate_and_undelivered_rejected(self):
        m = self._map()
        with pytest.raises(KnowledgeError):
            m.add(KnowledgeItem("k1", "again"), [DeliveryPoint(kind="enter", ref="r")])
        with pytest.raises(KnowledgeError):
            m.add(KnowledgeItem("k3", "x"), [])

    def test_exposures_resolution(self):
        m = self._map()
        exp = m.exposures_from_session(
            entered_scenarios={"room"},
            fired_bindings=set(),
            examined_objects=set(),
            dialogue_nodes=set(),
            watched_seconds=40.0,
        )
        assert exp == {"k1": False, "k2": False}

    def test_active_beats_passive(self):
        m = self._map()
        exp = m.exposures_from_session(
            entered_scenarios=set(),
            fired_bindings={"ev-1"},
            examined_objects=set(),
            dialogue_nodes=set(),
            watched_seconds=40.0,
        )
        assert exp["k2"] is True

    def test_gain_score_weighted(self):
        m = self._map()
        assert m.gain_score({"k1"}) == pytest.approx(1 / 3)
        assert m.gain_score({"k2"}) == pytest.approx(2 / 3)
        assert m.gain_score({"k1", "k2", "ghost"}) == pytest.approx(1.0)


class TestAssessment:
    def _map(self, n=5):
        m = KnowledgeMap()
        for k in range(n):
            m.add(KnowledgeItem(f"k{k}", f"fact {k}"),
                  [DeliveryPoint(kind="enter", ref="r")])
        return m

    def test_knowing_items_scores_higher(self):
        m = self._map(8)
        test = Test(m, repeats=3)
        rng = np.random.default_rng(0)
        knowing = [test.administer({f"k{k}" for k in range(8)}, rng).fraction
                   for _ in range(20)]
        guessing = [test.administer(set(), rng).fraction for _ in range(20)]
        assert np.mean(knowing) > np.mean(guessing) + 0.3

    def test_guess_floor(self):
        m = self._map(10)
        test = Test(m, n_options=4, repeats=5)
        rng = np.random.default_rng(1)
        fractions = [test.administer(set(), rng).fraction for _ in range(30)]
        assert abs(float(np.mean(fractions)) - 0.25) < 0.08

    def test_repeats_multiply_questions(self):
        m = self._map(4)
        assert len(Test(m, repeats=3).questions) == 12

    def test_validation(self):
        m = self._map(2)
        with pytest.raises(ValueError):
            Test(m, p_known=0.0)
        with pytest.raises(ValueError):
            Test(m, repeats=0)
        with pytest.raises(ValueError):
            Question(item_id="k", prompt="p", n_options=1)

    def test_hake_gain(self):
        assert hake_gain(TestResult(2, 10), TestResult(6, 10)) == pytest.approx(0.5)
        assert hake_gain(TestResult(10, 10), TestResult(10, 10)) == 0.0
        assert hake_gain(TestResult(5, 10), TestResult(3, 10)) < 0


class TestAnalytics:
    def _record(self, **kw):
        defaults = dict(
            player_id="p", platform="vgbl", time_on_task=100.0, completed=True,
            dropped_out=False, interactions=10, knowledge_gain=0.5,
            final_engagement=0.8, score=20,
        )
        defaults.update(kw)
        return OutcomeRecord(**defaults)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            self._record(completed=True, dropped_out=True)
        with pytest.raises(ValueError):
            self._record(time_on_task=-1)

    def test_mean_ci(self):
        m, h = mean_ci([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert h > 0
        assert mean_ci([5.0]) == (5.0, 0.0)
        assert mean_ci([]) == (0.0, 0.0)

    def test_summarize(self):
        records = [
            self._record(player_id="a"),
            self._record(player_id="b", completed=False, dropped_out=True,
                         knowledge_gain=0.1),
        ]
        s = summarize(records)
        assert s.n == 2
        assert s.completion_rate == 0.5
        assert s.dropout_rate == 0.5
        assert s.mean_knowledge_gain == pytest.approx(0.3)

    def test_summarize_rejects_mixed_platforms(self):
        with pytest.raises(ValueError):
            summarize([self._record(), self._record(platform="slideshow")])
        with pytest.raises(ValueError):
            summarize([])


class TestPackaging:
    def test_roundtrip(self, tmp_path, classroom_game):
        save_package(classroom_game, tmp_path, description="demo",
                     knowledge_items={"k1": "fact"})
        pkg = load_package(tmp_path)
        assert isinstance(pkg, CoursePackage)
        assert pkg.title == classroom_game.title
        assert pkg.manifest["knowledge_items"] == {"k1": "fact"}
        eng = pkg.game.new_engine(with_video=False)
        eng.start()
        assert eng.current_scenario.scenario_id == classroom_game.start

    def test_media_tamper_detected(self, tmp_path, classroom_game):
        save_package(classroom_game, tmp_path)
        media = tmp_path / "game.rvid"
        data = bytearray(media.read_bytes())
        data[100] ^= 0xFF
        media.write_bytes(bytes(data))
        with pytest.raises(PackageError):
            load_package(tmp_path)

    def test_structure_tamper_detected(self, tmp_path, classroom_game):
        save_package(classroom_game, tmp_path)
        st_file = tmp_path / "structure.json"
        st_file.write_text(st_file.read_text().replace("classroom", "clasroom"))
        with pytest.raises(PackageError):
            load_package(tmp_path)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PackageError):
            load_package(tmp_path)


class TestProductionCost:
    def test_video_cheapest_at_any_scale(self):
        for n in (1, 5, 20, 100):
            costs = {c.pipeline: c.total_hours
                     for c in compare_pipelines([n]) if c.n_scenes == n}
            assert costs["video"] < costs["flash"] < costs["3d"]

    def test_gap_grows_with_scale(self):
        small = {c.pipeline: c.total_hours for c in compare_pipelines([2])}
        large = {c.pipeline: c.total_hours for c in compare_pipelines([50])}
        assert (large["3d"] - large["video"]) > (small["3d"] - small["video"])

    def test_estimate_linear(self):
        p = PIPELINES["video"]
        c0 = estimate_cost(p, 0)
        c10 = estimate_cost(p, 10)
        assert c0.total_hours == pytest.approx(p.fixed_hours)
        assert c10.total_hours == pytest.approx(
            p.fixed_hours + 10 * p.hours_per_scene
        )

    def test_negative_scenes_rejected(self):
        with pytest.raises(ValueError):
            estimate_cost(PIPELINES["video"], -1)

    def test_skill_levels(self):
        assert PIPELINES["video"].skill == "novice"
        assert PIPELINES["3d"].skill == "specialist"
