"""Tests for the CLI, PPM export and the scenario funnel."""

import pytest

from repro.cli import main
from repro.core import save_project
from repro.learning import scenario_funnel
from repro.reporting import read_ppm, write_ppm
from repro.runtime import MouseClick, SessionRecorder
from repro.video import Frame, FrameSize


class TestPpm:
    def test_roundtrip(self, tmp_path):
        frame = Frame.from_gradient(FrameSize(17, 11), (10, 200, 30), (200, 10, 230))
        path = tmp_path / "img.ppm"
        nbytes = write_ppm(frame, path)
        assert path.stat().st_size == nbytes
        assert read_ppm(path) == frame

    def test_header_format(self, tmp_path):
        path = tmp_path / "img.ppm"
        write_ppm(Frame.blank(FrameSize(3, 2)), path)
        assert path.read_bytes().startswith(b"P6\n3 2\n255\n")

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"GIF89a....")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_read_skips_comments(self, tmp_path):
        frame = Frame.blank(FrameSize(2, 2), (9, 8, 7))
        path = tmp_path / "c.ppm"
        data = b"P6\n# a comment\n2 2\n255\n" + frame.tobytes()
        path.write_bytes(data)
        assert read_ppm(path) == frame

    def test_read_rejects_bad_maxval(self, tmp_path):
        path = tmp_path / "m.ppm"
        path.write_bytes(b"P6\n1 1\n65535\n\x00\x00\x00")
        with pytest.raises(ValueError):
            read_ppm(path)


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "winnable=True" in out
        assert "walkthrough:" in out
        assert "Interactive VGBL Player" in out

    def test_validate_ok(self, tmp_path, classroom_wizard, capsys):
        save_project(classroom_wizard.project, tmp_path)
        assert main(["validate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
        assert "winnable: True" in out

    def test_validate_failing_project(self, tmp_path, capsys):
        from repro.core import GameProject, ScenarioEditor
        from repro.core.templates import scene_footage
        from repro.video import FrameSize

        project = GameProject("Broken")
        editor = ScenarioEditor(project)
        editor.import_footage("c", scene_footage(FrameSize(48, 36), 1, duration=4))
        editor.commit_whole("c")
        editor.create_scenario("room", "Room", "c")
        save_project(project, tmp_path)
        assert main(["validate", str(tmp_path)]) == 1
        assert "unwinnable" in capsys.readouterr().out

    def test_solve(self, tmp_path, classroom_wizard, capsys):
        save_project(classroom_wizard.project, tmp_path)
        assert main(["solve", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "winnable in 4 moves" in out
        assert "use ram on computer" in out

    def test_solve_bounded_inconclusive(self, tmp_path, classroom_wizard, capsys):
        save_project(classroom_wizard.project, tmp_path)
        assert main(["solve", str(tmp_path), "--max-states", "1"]) == 2

    def test_figures(self, tmp_path, classroom_wizard, capsys):
        proj = tmp_path / "proj"
        out = tmp_path / "figs"
        save_project(classroom_wizard.project, proj)
        assert main(["figures", str(proj), str(out)]) == 0
        assert (out / "fig1_authoring_tool.txt").exists()
        sheet = read_ppm(out / "storyboard.ppm")
        assert sheet.width > 0

    def test_compare(self, capsys):
        assert main(["compare", "--students", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "vgbl" in out and "slideshow" in out

    def test_wal_inspect_recover_compact(self, tmp_path, capsys):
        """End-to-end over real journals: log sessions with the built-in
        demo game, tear the tail, then drive all three wal actions."""
        from repro.core import fetch_quest_game
        from repro.persist import (
            Journal,
            PersistenceConfig,
            input_record,
            start_record,
        )
        from repro.students import cohort_scripts

        game = fetch_quest_game(n_quests=2, title="wal-recover").build()
        scripts = cohort_scripts(game, 2, seed=13)
        shard_dir = tmp_path / "shard-00"
        journal = Journal(shard_dir, PersistenceConfig(directory=tmp_path))
        for script in scripts:
            journal.append(
                start_record(script.player_id, script.dt, script.ops)
            )
            for op in script.ops[:3]:
                journal.append(input_record(script.player_id, op))
        journal.sync(timeout=5.0)
        journal.close()
        segment = sorted(shard_dir.glob("wal-*.log"))[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\x22\x00\x00\x00 torn")

        assert main(["wal", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard-00" in out and "torn" in out

        assert main(["wal", "recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "digest" in out

        assert main(["wal", "compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "watermark" in out

    def test_wal_inspect_bad_directory(self, tmp_path, capsys):
        assert main(["wal", "inspect", str(tmp_path / "missing")]) == 2


class TestScenarioFunnel:
    def _play_session(self, game, visit_market: bool):
        eng = game.new_engine(with_video=False)
        # Subscribe before start() so the initial scenario notice is seen.
        rec = SessionRecorder(eng.bus, "p")
        eng.start()
        # Click the computer (interaction in the classroom), then dismiss
        # its description popup so later clicks are not modal-captured.
        x, y = game.scenarios["classroom"].get_object("computer").hotspot.center()
        eng.handle_input(MouseClick(x, y))
        eng.handle_input(MouseClick(1, 1))
        if visit_market:
            bx, by = game.scenarios["classroom"].get_object(
                "classroom-go-market").hotspot.center()
            eng.handle_input(MouseClick(bx, by))
        return rec.finish(10.0, None, 0, len(eng.state.visited))

    def test_reach_fractions(self, classroom_game):
        logs = [
            self._play_session(classroom_game, visit_market=True),
            self._play_session(classroom_game, visit_market=True),
            self._play_session(classroom_game, visit_market=False),
        ]
        rows = scenario_funnel(logs)
        by_id = {r.scenario_id: r for r in rows}
        assert by_id["classroom"].sessions_reached == 3
        assert by_id["classroom"].reach_fraction == 1.0
        assert by_id["market"].sessions_reached == 2
        assert by_id["market"].reach_fraction == pytest.approx(2 / 3)

    def test_interactions_attributed_to_scenario(self, classroom_game):
        logs = [self._play_session(classroom_game, visit_market=False)]
        rows = scenario_funnel(logs)
        by_id = {r.scenario_id: r for r in rows}
        # Both gestures (click + dismissal-free click) land in the classroom.
        assert by_id["classroom"].mean_interactions >= 1

    def test_sorted_by_reach(self, classroom_game):
        logs = [self._play_session(classroom_game, visit_market=i == 0)
                for i in range(2)]
        rows = scenario_funnel(logs)
        reaches = [r.sessions_reached for r in rows]
        assert reaches == sorted(reaches, reverse=True)

    def test_requires_logs(self):
        with pytest.raises(ValueError):
            scenario_funnel([])
