"""Loopback tests for the asyncio gateway server."""

import asyncio
import socket
import time

import pytest

from repro import obs
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayError,
    GatewayRejected,
    GatewayServer,
    GatewayThread,
)
from repro.gateway.protocol import HELLO, PING, STATE, encode_frame
from repro.gateway.server import _Connection
from repro.persist import PersistenceConfig, scan_journal, state_digest
from repro.persist.records import apply_scripted_op
from repro.serve import ServeConfig, SessionManager
from repro.students import cohort_scripts


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=23)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


def _value(name, **labels):
    metric = obs.get_registry().get(name)
    assert metric is not None, f"metric {name} not registered"
    return metric.value(**labels)


def _gateway(game, **serve_kwargs):
    serve_kwargs.setdefault("n_shards", 2)
    serve_kwargs.setdefault("tick_interval_s", 0.002)
    serve_kwargs.setdefault("max_steps_per_tick", 50)
    manager = SessionManager(ServeConfig(**serve_kwargs))
    return GatewayServer(manager, game)


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _reference_digest(game, script):
    engine = game.new_engine(with_video=False)
    engine.start()
    for op in script.ops:
        apply_scripted_op(engine, op, script.dt)
    return state_digest(engine.state)


class TestEndToEnd:
    def test_submit_runs_to_end_with_reference_digest(
        self, classroom_game, scripts, live
    ):
        script = scripts[0]
        with GatewayThread(_gateway(classroom_game)) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    assert client.server_info["shards"] == 2
                    ack = await client.submit("e2e-1", script.ops, dt=script.dt)
                    assert ack["status"] == "admitted"
                    assert ack["shard"] == handle.server.manager.shard_for("e2e-1")
                    rtt = await client.ping()
                    assert rtt > 0
                    return await client.wait_end("e2e-1", timeout=30.0)

            end = asyncio.run(drive())
        assert end["player"] == "e2e-1"
        assert not end["failed"]
        assert end["steps"] == len(script.ops)
        assert end["digest"] == _reference_digest(classroom_game, script)

    def test_input_frame_is_queued_on_live_session(
        self, classroom_game, scripts, live
    ):
        # Slow ticks keep the session live long enough to accept input.
        script = scripts[1]
        gw = _gateway(classroom_game, tick_interval_s=0.05,
                      max_steps_per_tick=1)
        with GatewayThread(gw) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    await client.submit("inp-1", script.ops, dt=script.dt)
                    ack = await client.send_input("inp-1", script.ops[0])
                    assert ack["status"] == "queued"
                    with pytest.raises(GatewayError) as err:
                        await client.send_input("nobody", script.ops[0])
                    assert err.value.code == "unknown_player"
                    return await client.wait_end("inp-1", timeout=30.0)

            end = asyncio.run(drive())
        assert not end["failed"]

    def test_unexpected_frame_type_gets_machine_error(
        self, classroom_game, live
    ):
        with GatewayThread(_gateway(classroom_game)) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    with pytest.raises(GatewayError) as err:
                        await client._request(STATE, {"player": "x"})
                    return err.value.code

            assert asyncio.run(drive()) == "unexpected_frame"


class TestAdmission:
    def test_rejection_surfaces_as_error_frame(
        self, classroom_game, scripts, live
    ):
        before = _value("repro_gateway_rejected_total")
        gw = _gateway(classroom_game, max_sessions=1,
                      tick_interval_s=0.05, max_steps_per_tick=1)
        script = scripts[0]
        with GatewayThread(gw) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    await client.submit("adm-1", script.ops, dt=script.dt)
                    with pytest.raises(GatewayRejected) as err:
                        await client.submit("adm-2", script.ops, dt=script.dt)
                    assert err.value.code == "rejected"
                    # the first session is untouched by the rejection
                    end = await client.wait_end("adm-1", timeout=30.0)
                    assert not end["failed"]

            asyncio.run(drive())
        assert _value("repro_gateway_rejected_total") == before + 1

    def test_duplicate_live_player_refused(self, classroom_game, scripts, live):
        gw = _gateway(classroom_game, tick_interval_s=0.05,
                      max_steps_per_tick=1)
        script = scripts[0]
        with GatewayThread(gw) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    await client.submit("dup-1", script.ops, dt=script.dt)
                    with pytest.raises(GatewayError) as err:
                        await client.submit("dup-1", script.ops, dt=script.dt)
                    assert err.value.code == "duplicate"
                    await client.wait_end("dup-1", timeout=30.0)

            asyncio.run(drive())


class TestRobustness:
    def test_garbage_bytes_drop_connection_not_server(
        self, classroom_game, scripts, live
    ):
        before = _value("repro_gateway_protocol_errors_total")
        with GatewayThread(_gateway(classroom_game)) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
                # the server answers with an ERROR frame, then EOF
                reply = b""
                sock.settimeout(5.0)
                try:
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        reply += chunk
                except TimeoutError:
                    pass
            assert reply, "expected an ERROR frame before the close"
            assert _wait_until(
                lambda: _value("repro_gateway_protocol_errors_total")
                == before + 1
            )

            # a well-behaved client still gets served afterwards
            script = scripts[0]

            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    await client.submit("after-garbage", script.ops,
                                        dt=script.dt)
                    return await client.wait_end("after-garbage", timeout=30.0)

            assert not asyncio.run(drive())["failed"]

    def test_mid_handshake_disconnect_is_counted_not_fatal(
        self, classroom_game, live
    ):
        before = _value("repro_gateway_disconnects_total", reason="truncated")
        with GatewayThread(_gateway(classroom_game)) as handle:
            frame = encode_frame(HELLO, {"client": "quitter", "resume": []})
            with socket.create_connection((handle.host, handle.port)) as sock:
                sock.sendall(frame[: len(frame) // 2])
            assert _wait_until(
                lambda: _value(
                    "repro_gateway_disconnects_total", reason="truncated"
                ) == before + 1
            )

            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    return client.server_info["server"]

            assert asyncio.run(drive()) == "repro-gateway"

    def test_first_frame_must_be_hello(self, classroom_game, live):
        with GatewayThread(_gateway(classroom_game)) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                sock.sendall(encode_frame(PING, {}))
                sock.settimeout(5.0)
                reply = sock.recv(4096)
            assert reply, "expected an ERROR frame for HELLO-less PING"

    def test_slow_reader_overflow_drops_connection(self, classroom_game, live):
        """Unit-level: a full outbound queue aborts with a counted reason."""
        before = _value("repro_gateway_slow_reader_drops_total")
        server = _gateway(classroom_game)
        server.config = GatewayConfig(outbound_queue_frames=1)

        class _DeadWriter:
            def get_extra_info(self, name):
                return ("stalled", 0)

            def close(self):
                pass

        async def drive():
            conn = _Connection(server, reader=None, writer=_DeadWriter())
            assert conn.send(PING, {"n": 1})  # fills the queue
            assert not conn.send(PING, {"n": 2})  # overflow: dropped
            return conn

        conn = asyncio.run(drive())
        assert conn.closed
        assert conn.close_reason == "slow_reader"
        assert _value("repro_gateway_slow_reader_drops_total") == before + 1
        # further sends are no-ops on a dead connection
        assert not conn.send(PING, {"n": 3})


class TestDrain:
    def test_graceful_drain_flushes_shard_journals(
        self, tmp_path, classroom_game, scripts, live
    ):
        persistence = PersistenceConfig(
            directory=tmp_path, snapshot_every=4, group_window_s=0.001
        )
        gw = _gateway(classroom_game, persistence=persistence)
        handle = GatewayThread(gw).start()
        try:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    for i, script in enumerate(scripts):
                        await client.submit(f"drain-{i}", script.ops,
                                            dt=script.dt)
                    for i in range(len(scripts)):
                        end = await client.wait_end(f"drain-{i}", timeout=30.0)
                        assert not end["failed"]

            asyncio.run(drive())
        finally:
            assert handle.stop(drain=True)
        reports = [
            scan_journal(persistence.shard_dir(i))
            for i in range(2)
            if persistence.shard_dir(i).is_dir()
        ]
        assert reports, "drain left no shard journals behind"
        assert sum(len(r.records) for r in reports) > 0
        assert all(r.torn_records == 0 for r in reports)
