"""Tests for the bounded segment cache and its eviction policies."""

import pytest

from repro.core import fetch_quest_game
from repro.graph import build_graph
from repro.net import EVICTION_POLICIES, SegmentCache, simulate_cached_playback
from repro.video import FrameSize, VideoReader


class TestSegmentCacheBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentCache(0)
        with pytest.raises(ValueError):
            SegmentCache(100, policy="magic")
        with pytest.raises(ValueError):
            SegmentCache(100, policy="graph")  # needs a graph

    def test_hit_miss_accounting(self):
        cache = SegmentCache(100)
        assert cache.access(1, 40) is False   # miss
        assert cache.access(1, 40) is True    # hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_oversized_segment_rejected(self):
        cache = SegmentCache(100)
        with pytest.raises(ValueError):
            cache.access(1, 200)
        with pytest.raises(ValueError):
            cache.access(1, 0)

    def test_capacity_enforced(self):
        cache = SegmentCache(100)
        cache.access(1, 60)
        cache.access(2, 60)  # evicts 1
        assert cache.resident_bytes <= 100
        assert cache.stats.evictions == 1
        assert not cache.contains(1)

    def test_refetch_counted(self):
        cache = SegmentCache(100)
        cache.access(1, 60)
        cache.access(2, 60)   # evicts 1
        cache.access(1, 60)   # refetch!
        assert cache.stats.refetches == 1


class TestEvictionAccounting:
    def test_resident_bytes_invariant_random_workload(self):
        """The incremental byte total always equals the true sum.

        The eviction loop used to re-sum the OrderedDict per iteration;
        the running total must stay exact through arbitrary interleaved
        hits, misses, and multi-segment evictions.
        """
        import random

        rng = random.Random(42)
        for policy in ("lru", "fifo"):
            cache = SegmentCache(1000, policy=policy)
            for _ in range(500):
                cache.access(rng.randrange(40), rng.randrange(1, 400))
                assert cache.resident_bytes == sum(
                    cache._resident.values()
                )
                assert cache.resident_bytes <= cache.capacity_bytes

    def test_one_admission_can_evict_many(self):
        cache = SegmentCache(100, policy="lru")
        for seg in range(5):
            cache.access(seg, 20)
        cache.access(99, 100)  # needs the whole cache: evicts all five
        assert cache.stats.evictions == 5
        assert cache.resident_segments == [99]
        assert cache.resident_bytes == 100

    def test_graph_distances_computed_once_per_admission(self, monkeypatch):
        """A multi-eviction admission walks the graph exactly once."""
        import repro.net.cache as cache_mod

        game = fetch_quest_game(n_quests=3, size=FrameSize(64, 48)).build()
        graph = build_graph(game.scenarios, game.events, game.start)
        calls = {"n": 0}
        real = cache_mod.nx.single_source_shortest_path_length

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            cache_mod.nx, "single_source_shortest_path_length", counting
        )
        cache = SegmentCache(100, policy="graph", graph=graph)
        names = list(graph.scenarios)
        for k, name in enumerate(names[:4]):
            cache.access(10 + k, 25, scenario_id=name, current_scenario=name)
        calls["n"] = 0
        # Admitting a full-cache segment evicts all four residents but
        # must compute the shortest-path tree exactly once.
        cache.access(99, 100, scenario_id=names[0],
                     current_scenario=names[0])
        assert cache.stats.evictions == 4
        assert calls["n"] == 1


class TestLruVsFifo:
    def test_lru_keeps_hot_segment(self):
        cache = SegmentCache(100, policy="lru")
        cache.access(1, 40)
        cache.access(2, 40)
        cache.access(1, 40)   # touch 1: now 2 is the LRU victim
        cache.access(3, 40)   # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_fifo_evicts_in_arrival_order(self):
        cache = SegmentCache(100, policy="fifo")
        cache.access(1, 40)
        cache.access(2, 40)
        cache.access(1, 40)   # hit: does not change FIFO order
        cache.access(3, 40)   # evicts 1 (oldest arrival)
        assert not cache.contains(1)
        assert cache.contains(2)


class TestGraphPolicy:
    @pytest.fixture(scope="class")
    def game_parts(self):
        game = fetch_quest_game(n_quests=3, size=FrameSize(64, 48)).build()
        reader = VideoReader(game.container)
        graph = build_graph(game.scenarios, game.events, game.start)
        return reader, graph

    def test_evicts_farthest_scenario(self, game_parts):
        reader, graph = game_parts
        sizes = {e.segment_id: e.byte_size for e in reader.index}
        seg_of = {sid: sc.segment_ref for sid, sc in graph.scenarios.items()}
        # Sized so exactly one eviction is needed to admit place-2.
        cap = (sizes[seg_of["hub"]] + sizes[seg_of["place-1"]]
               + max(sizes[seg_of["place-0"]], sizes[seg_of["place-2"]]))
        cache = SegmentCache(cap, policy="graph", graph=graph)
        cache.access(seg_of["hub"], sizes[seg_of["hub"]],
                     scenario_id="hub", current_scenario="hub")
        cache.access(seg_of["place-0"], sizes[seg_of["place-0"]],
                     scenario_id="place-0", current_scenario="place-0")
        cache.access(seg_of["place-1"], sizes[seg_of["place-1"]],
                     scenario_id="place-1", current_scenario="place-1")
        # Player is in place-1; admitting place-2 must evict a far
        # sibling (place-0), never the adjacent hub.
        cache.access(seg_of["place-2"], sizes[seg_of["place-2"]],
                     scenario_id="place-2", current_scenario="place-1")
        assert cache.contains(seg_of["hub"])
        assert not cache.contains(seg_of["place-0"])

    def test_simulated_playback_policies(self, game_parts):
        reader, graph = game_parts
        tour = [("hub", 5.0)]
        for k in range(3):
            tour += [(f"place-{k}", 5.0), ("hub", 5.0)]
        tour *= 2  # revisits: where caching matters
        total = sum(e.byte_size for e in reader.index)
        cap = int(total * 0.7)
        stats = {
            policy: simulate_cached_playback(reader, graph, tour, cap, policy)
            for policy in EVICTION_POLICIES
        }
        # LRU exploits the hub's recency; FIFO cannot.
        assert stats["lru"].refetches <= stats["fifo"].refetches
        assert stats["lru"].hit_rate >= stats["fifo"].hit_rate
        # All policies count identical accesses.
        n = len(tour)
        for s in stats.values():
            assert s.hits + s.misses == n

    def test_big_cache_never_evicts(self, game_parts):
        reader, graph = game_parts
        tour = [("hub", 1.0), ("place-0", 1.0), ("hub", 1.0)] * 3
        total = sum(e.byte_size for e in reader.index)
        stats = simulate_cached_playback(reader, graph, tour, total + 1, "lru")
        assert stats.evictions == 0
        assert stats.refetches == 0
