"""Tests for gesture interpretation and the frame compositor."""

import numpy as np
import pytest

from repro.graph import Scenario
from repro.objects import ButtonObject, ImageObject, ItemObject, NPCObject, RectHotspot
from repro.runtime import (
    Compositor,
    GameState,
    GestureKind,
    InputError,
    KeyPress,
    MouseClick,
    MouseDrag,
    UiLayout,
    interpret,
)
from repro.video import Frame, FrameSize

SIZE = FrameSize(100, 80)
LAYOUT = UiLayout.default_for(SIZE.width, SIZE.height)


@pytest.fixture()
def scenario():
    sc = Scenario("room", "Room", 0)
    sc.add_object(ImageObject(object_id="poster", name="Poster",
                              hotspot=RectHotspot(10, 10, 20, 15)))
    sc.add_object(ItemObject(object_id="key", name="Key",
                             hotspot=RectHotspot(50, 30, 8, 8)))
    sc.add_object(NPCObject(object_id="guide", name="Guide", dialogue_id="d",
                            hotspot=RectHotspot(70, 10, 12, 25)))
    sc.add_object(ButtonObject(object_id="exit", name="Exit", label="Exit",
                               hotspot=RectHotspot(80, 60, 15, 8)))
    return sc


@pytest.fixture()
def state():
    return GameState("room")


class TestUiLayout:
    def test_default_strip_at_bottom(self):
        lo = UiLayout.default_for(100, 80)
        assert lo.inv_y + lo.inv_h == 80
        assert lo.in_inventory(5, lo.inv_y + 1)
        assert not lo.in_inventory(5, lo.inv_y - 1)

    def test_slot_indexing(self):
        lo = UiLayout.default_for(100, 80)
        assert lo.slot_at(0, lo.inv_y + 1) == 0
        assert lo.slot_at(lo.slot_w + 1, lo.inv_y + 1) == 1
        assert lo.slot_at(5, 5) is None


class TestInterpret:
    def test_left_click_object(self, scenario, state):
        g = interpret(MouseClick(15, 15), scenario, state, LAYOUT)
        assert g.kind == GestureKind.CLICK and g.object_id == "poster"

    def test_right_click_examines(self, scenario, state):
        g = interpret(MouseClick(15, 15, button="right"), scenario, state, LAYOUT)
        assert g.kind == GestureKind.EXAMINE

    def test_click_npc_talks(self, scenario, state):
        g = interpret(MouseClick(72, 15), scenario, state, LAYOUT)
        assert g.kind == GestureKind.TALK and g.object_id == "guide"

    def test_click_with_selection_uses_item(self, scenario, state):
        state.inventory.add("key")
        state.inventory.select("key")
        g = interpret(MouseClick(15, 15), scenario, state, LAYOUT)
        assert g.kind == GestureKind.USE_ITEM
        assert g.item_id == "key" and g.object_id == "poster"

    def test_click_empty_space(self, scenario, state):
        g = interpret(MouseClick(45, 5), scenario, state, LAYOUT)
        assert g.kind == GestureKind.NONE

    def test_click_inventory_selects_slot(self, scenario, state):
        g = interpret(MouseClick(2, LAYOUT.inv_y + 2), scenario, state, LAYOUT)
        assert g.kind == GestureKind.SELECT_SLOT and g.slot_index == 0

    def test_modal_click_dismisses(self, scenario, state):
        state.push_popup("text", "hi", 0.0)
        g = interpret(MouseClick(15, 15), scenario, state, LAYOUT)
        assert g.kind == GestureKind.DISMISS

    def test_drag_portable_to_inventory_takes(self, scenario, state):
        g = interpret(MouseDrag(52, 32, 5, LAYOUT.inv_y + 2), scenario, state, LAYOUT)
        assert g.kind == GestureKind.TAKE and g.object_id == "key"

    def test_drag_non_portable_to_inventory_noop(self, scenario, state):
        g = interpret(MouseDrag(15, 15, 5, LAYOUT.inv_y + 2), scenario, state, LAYOUT)
        assert g.kind == GestureKind.NONE

    def test_drag_draggable_moves(self, scenario, state):
        g = interpret(MouseDrag(52, 32, 30, 30), scenario, state, LAYOUT)
        assert g.kind == GestureKind.MOVE and g.move_to == (30, 30)

    def test_drag_from_empty_space(self, scenario, state):
        g = interpret(MouseDrag(45, 5, 10, 10), scenario, state, LAYOUT)
        assert g.kind == GestureKind.NONE

    def test_arrow_keys_move_avatar(self, scenario, state):
        g = interpret(KeyPress("left"), scenario, state, LAYOUT)
        assert g.kind == GestureKind.AVATAR and g.avatar_delta == (-8.0, 0.0)

    def test_other_keys_noop(self, scenario, state):
        g = interpret(KeyPress("q"), scenario, state, LAYOUT)
        assert g.kind == GestureKind.NONE

    def test_invisible_objects_not_hit(self, scenario, state):
        state.visibility["poster"] = False
        g = interpret(MouseClick(15, 15), scenario, state, LAYOUT)
        assert g.kind == GestureKind.NONE

    def test_bad_button_rejected(self):
        with pytest.raises(InputError):
            MouseClick(1, 1, button="middle")

    def test_unknown_event_type(self, scenario, state):
        with pytest.raises(InputError):
            interpret(object(), scenario, state, LAYOUT)


class TestCompositor:
    def _base(self):
        return Frame.blank(SIZE, (50, 50, 50))

    def test_size_checked(self, scenario, state):
        comp = Compositor(LAYOUT)
        with pytest.raises(ValueError):
            comp.compose(Frame.blank(FrameSize(10, 10)), scenario, state)

    def test_objects_drawn(self, scenario, state):
        comp = Compositor(LAYOUT)
        out = comp.compose(self._base(), scenario, state)
        # The button face colour appears inside its hotspot.
        assert not np.array_equal(
            out.data[62, 82], np.array([50, 50, 50], dtype=np.uint8)
        )

    def test_inventory_strip_drawn(self, scenario, state):
        comp = Compositor(LAYOUT)
        out = comp.compose(self._base(), scenario, state)
        assert (out.data[LAYOUT.inv_y + 2, 2] == comp.inv_bg).all()

    def test_popup_dims_scene(self, scenario, state):
        comp = Compositor(LAYOUT)
        plain = comp.compose(self._base(), scenario, state)
        state.push_popup("text", "hi", 0.0)
        dimmed = comp.compose(self._base(), scenario, state)
        assert dimmed.data[2, 2, 0] < plain.data[2, 2, 0]

    def test_hidden_objects_skipped(self, scenario, state):
        comp = Compositor(LAYOUT)
        visible = comp.compose(self._base(), scenario, state)
        state.visibility["poster"] = False
        hidden = comp.compose(self._base(), scenario, state)
        assert visible.checksum() != hidden.checksum()

    def test_layer_cache_reused(self, scenario, state):
        comp = Compositor(LAYOUT)
        comp.compose(self._base(), scenario, state)
        comp.compose(self._base(), scenario, state)
        assert comp.stats.cache_builds == 1
        assert comp.stats.frames_composited == 2

    def test_cache_invalidated_on_visibility_change(self, scenario, state):
        comp = Compositor(LAYOUT)
        comp.compose(self._base(), scenario, state)
        state.visibility["poster"] = False
        comp.compose(self._base(), scenario, state)
        assert comp.stats.cache_builds == 2

    def test_cache_invalidated_on_move(self, scenario, state):
        comp = Compositor(LAYOUT)
        comp.compose(self._base(), scenario, state)
        scenario.get_object("key").move_to(20, 20)
        comp.compose(self._base(), scenario, state)
        assert comp.stats.cache_builds == 2

    def test_avatar_marker(self, scenario, state):
        comp = Compositor(LAYOUT)
        state.avatar_xy = (30.0, 30.0)
        out = comp.compose(self._base(), scenario, state)
        assert (out.data[30, 30] == (120, 80, 20)).all()

    def test_selected_slot_highlight(self, scenario, state):
        state.inventory.add("key", name="Key")
        comp = Compositor(LAYOUT)
        plain = comp.compose(self._base(), scenario, state)
        state.inventory.select("key")
        selected = comp.compose(self._base(), scenario, state)
        assert plain.checksum() != selected.checksum()

    def test_input_frame_not_mutated(self, scenario, state):
        base = self._base()
        checksum = base.checksum()
        Compositor(LAYOUT).compose(base, scenario, state)
        assert base.checksum() == checksum
