"""Loopback tests for WAL-shipping replication (source → standby)."""

import socket
import time

import pytest

from repro import obs
from repro.faultline.chaos import reference_digest
from repro.gateway.protocol import HELLO, ProtocolError
from repro.gateway.protocol import encode_frame as gateway_encode_frame
from repro.persist import (
    PersistenceConfig,
    scan_journal,
    state_digest,
)
from repro.persist.records import ops_from_dicts
from repro.replicate import (
    R_ERROR,
    R_HANDSHAKE,
    ReplicaLagging,
    ReplicationSource,
    StandbyReplica,
    write_epoch,
)
from repro.replicate.protocol import encode, make_decoder, require
from repro.serve import ServeConfig, SessionManager, session_factory_for_script
from repro.students import cohort_scripts

N_SHARDS = 2


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=17)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


def _manager(persistence, **kwargs):
    kwargs.setdefault("n_shards", N_SHARDS)
    kwargs.setdefault("tick_interval_s", 0.003)
    kwargs.setdefault("max_steps_per_tick", 8)
    return SessionManager(ServeConfig(persistence=persistence, **kwargs))


def _submit_all(manager, game, scripts, suffix="r"):
    sids = []
    for k, script in enumerate(scripts):
        sid = f"{script.player_id}#{suffix}{k}"
        assert manager.submit(sid, session_factory_for_script(game, script))
        sids.append(sid)
    return sids


def _primary_tips(persistence, n_shards=N_SHARDS):
    return {
        i: scan_journal(persistence.shard_dir(i), truncate=False).tip_lsn
        for i in range(n_shards)
        if persistence.shard_dir(i).is_dir()
    }


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        frame = encode(R_HANDSHAKE, {"shard": 1, "epoch": 3, "start": 42})
        frames = make_decoder().feed(frame)
        assert frames == [(R_HANDSHAKE, {"shard": 1, "epoch": 3, "start": 42})]

    def test_decoder_rejects_gateway_vocabulary(self):
        # same physical framing, disjoint frame vocabulary: a gateway
        # HELLO must not parse as a replication frame
        frame = gateway_encode_frame(HELLO, {"client": "x"})
        with pytest.raises(ProtocolError):
            make_decoder().feed(frame)

    def test_require_names_the_missing_key(self):
        require({"shard": 0}, "shard")
        with pytest.raises(ProtocolError, match="epoch"):
            require({"shard": 0}, "shard", "epoch")


class TestShipping:
    def test_steady_state_is_bit_identical(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ) as standby:
                sids = _submit_all(manager, classroom_game, scripts)
                assert manager.drain(timeout=30)
                manager.shutdown(drain=False)
                tips = _primary_tips(persistence)
                assert standby.wait_caught_up(tips, timeout_s=10)

                by_sid = {}
                for st in standby.shard_states():
                    assert st.lag == 0
                    by_sid.update(st.sessions)
                assert sorted(by_sid) == sorted(sids)
                for sid, sess in by_sid.items():
                    assert sess.ended
                    assert state_digest(sess.engine.state) == reference_digest(
                        classroom_game, ops_from_dicts(sess.ops),
                        sess.dt, sess.cursor,
                    )

    def test_standby_journal_holds_every_primary_record(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ) as standby:
                _submit_all(manager, classroom_game, scripts)
                assert manager.drain(timeout=30)
                manager.shutdown(drain=False)
                assert standby.wait_caught_up(_primary_tips(persistence), 10)
                for shard in range(N_SHARDS):
                    p = scan_journal(persistence.shard_dir(shard)).records
                    s = scan_journal(
                        tmp_path / "standby" / f"shard-{shard:02d}"
                    ).records
                    assert p == s  # same records, same order, same LSNs

    def test_reconnect_after_severed_link_is_idempotent(
        self, tmp_path, classroom_game, scripts, live
    ):
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence, tick_interval_s=0.01,
                           max_steps_per_tick=1)
        with ReplicationSource(
            persistence, N_SHARDS, batch_max_records=2,
        ) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port, reconnect_backoff_s=0.01,
            ) as standby:
                _submit_all(manager, classroom_game, scripts)
                # sever every shipping connection mid-stream, twice:
                # the standby must reconnect and resume from applied+1
                for _ in range(2):
                    time.sleep(0.1)
                    source._sever_all()
                assert manager.drain(timeout=30)
                manager.shutdown(drain=False)
                assert standby.wait_caught_up(_primary_tips(persistence), 10)
                reconnects = obs.get_registry().get(
                    "repro_repl_reconnects_total"
                )
                assert reconnects is not None and reconnects.total() >= 1
                for st in standby.shard_states():
                    for sess in st.sessions.values():
                        assert state_digest(sess.engine.state) == (
                            reference_digest(
                                classroom_game, ops_from_dicts(sess.ops),
                                sess.dt, sess.cursor,
                            )
                        )

    def test_duplicate_append_and_commit_are_idempotent(
        self, tmp_path, classroom_game, scripts
    ):
        # unit-level: drive one standby shard's handlers directly with
        # a replayed batch, as a flaky link would after a reconnect
        script = scripts[0]
        standby = StandbyReplica(
            tmp_path, classroom_game, 1, "127.0.0.1", 0,
        )
        st = standby.shard_states()[0]
        standby._handle_handshake(st, {"shard": 0, "epoch": 1, "start": 1})

        from repro.persist.records import (
            input_record,
            op_to_dict,
            start_record,
        )

        records = [dict(start_record("p#0", script.dt, script.ops), n=1)]
        for i, op in enumerate(script.ops[:4]):
            records.append(dict(input_record("p#0", op), n=2 + i))
        batch = {"shard": 0, "records": records}
        commit = {"shard": 0, "lsn": records[-1]["n"]}

        standby._handle_append(st, batch)
        standby._handle_commit(st, commit)
        digest_once = state_digest(st.sessions["p#0"].engine.state)
        cursor_once = st.sessions["p#0"].cursor
        assert cursor_once == 4
        assert digest_once == reference_digest(
            classroom_game, script.ops, script.dt, 4,
        )

        # the duplicate delivery: already-applied LSNs are dropped
        standby._handle_append(st, batch)
        standby._handle_commit(st, commit)
        assert st.sessions["p#0"].cursor == cursor_once
        assert state_digest(st.sessions["p#0"].engine.state) == digest_once
        assert st.applied_lsn == records[-1]["n"]
        # and nothing was double-written to the mirror log either
        op_dicts = [op_to_dict(op) for op in script.ops[:4]]
        assert op_dicts  # sanity: codec round-trips the ops we shipped
        logged = scan_journal(st.directory).records
        assert [r["n"] for r in logged] == [r["n"] for r in records]

    def test_mid_stream_join_bootstraps_from_snapshots(
        self, tmp_path, classroom_game, scripts, live
    ):
        # a primary whose early segments are already compacted away: a
        # brand-new standby asking for LSN 1 must be answered with the
        # snapshots covering the dropped prefix.  Hand-craft the
        # journal so the compaction point is deterministic.
        from repro.persist import (
            Journal,
            SnapshotStore,
            compact_segments,
            input_record,
            snapshot_dir_for,
            start_record,
        )
        from repro.persist.records import apply_scripted_op
        from repro.video.player import SimulatedClock

        root = tmp_path / "primary"
        shard_dir = root / "shard-00"
        journal = Journal(shard_dir, PersistenceConfig(
            directory=shard_dir, segment_max_bytes=4096, sync_each=True,
        ))
        store = SnapshotStore(snapshot_dir_for(shard_dir))
        sessions = []  # (sid, script, engine, last input lsn)
        for i, script in enumerate(scripts + scripts):
            sid = f"{script.player_id}#m{i}"
            journal.append(start_record(sid, script.dt, script.ops))
            engine = classroom_game.new_engine(
                clock=SimulatedClock(0.0), with_video=False,
            )
            engine.start()
            sessions.append([sid, script, engine, 0])
        longest = max(len(s.ops) for _, s, _, _ in sessions)
        for step in range(longest):  # round-robin, like the shards do
            for entry in sessions:
                sid, script, engine, _ = entry
                if step < len(script.ops):
                    op = script.ops[step]
                    entry[3] = journal.append(input_record(sid, op))
                    apply_scripted_op(engine, op, script.dt)
        for sid, script, engine, lsn in sessions:
            store.write(sid, script.dt, script.ops, len(script.ops),
                        engine.state.to_dict(), lsn=lsn)
        journal.close()
        assert len(list(shard_dir.glob("wal-*.log"))) > 1, \
            "test setup: expected the journal to rotate"
        dropped = compact_segments(
            shard_dir, min(lsn for _, _, _, lsn in sessions),
        )
        assert dropped >= 1, "test setup: expected a compacted prefix"
        tip = scan_journal(shard_dir).tip_lsn

        persistence = PersistenceConfig(directory=root)
        with ReplicationSource(persistence, 1) as source:
            with StandbyReplica(
                tmp_path / "standby", classroom_game, 1,
                source.host, source.port,
            ) as standby:
                assert standby.wait_caught_up({0: tip}, 10)
                boots = obs.get_registry().get(
                    "repro_repl_snapshot_bootstraps_total"
                )
                assert boots is not None and boots.total() >= 1
                st = standby.shard_states()[0]
                assert len(st.sessions) == len(sessions)
                for sid, script, engine, _ in sessions:
                    sess = st.sessions[sid]
                    # bootstrapped state + streamed tail must equal a
                    # from-scratch replay of the same cursor
                    assert sess.cursor == len(script.ops)
                    assert state_digest(sess.engine.state) == (
                        reference_digest(
                            classroom_game, script.ops, script.dt,
                            len(script.ops),
                        )
                    )
                # the mirrored snapshots make the standby recoverable
                # even though the streamed log starts mid-history
                mirrored, rejected = SnapshotStore(
                    snapshot_dir_for(st.directory)
                ).load_all()
                assert rejected == 0
                assert sorted(mirrored) == sorted(
                    sid for sid, _, _, _ in sessions
                )


class TestLagAndQuery:
    def test_query_unknown_player_raises_keyerror(
        self, tmp_path, classroom_game
    ):
        standby = StandbyReplica(tmp_path, classroom_game, 1,
                                 "127.0.0.1", 0)
        with pytest.raises(KeyError):
            standby.query("nobody")

    def test_query_refused_beyond_lag_bound(self, tmp_path, classroom_game):
        standby = StandbyReplica(tmp_path, classroom_game, 1,
                                 "127.0.0.1", 0, max_read_lag_records=3)
        st = standby.shard_states()[0]
        st.tip = 10  # 10 records shipped, none applied: lag 10 > 3
        with pytest.raises(ReplicaLagging, match="lags 10"):
            standby.query("anyone")

    def test_query_returns_consistent_view(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ) as standby:
                sids = _submit_all(manager, classroom_game, scripts)
                assert manager.drain(timeout=30)
                manager.shutdown(drain=False)
                assert standby.wait_caught_up(_primary_tips(persistence), 10)
                view = standby.query(sids[0])
                assert view["player"] == sids[0]
                assert view["status"] == "done"
                assert view["lag"] == 0
                script = scripts[0]
                assert view["digest"] == reference_digest(
                    classroom_game, script.ops, script.dt, len(script.ops),
                )


class TestFencing:
    def test_source_refuses_handshake_from_higher_epoch(
        self, tmp_path, classroom_game, live
    ):
        persistence = PersistenceConfig(directory=tmp_path / "primary")
        persistence.shard_dir(0).mkdir(parents=True)
        with ReplicationSource(persistence, 1) as source:
            with socket.create_connection(
                (source.host, source.port), timeout=5
            ) as conn:
                # epoch 7 proves a promotion happened elsewhere: this
                # source is a deposed primary and must not ship
                conn.sendall(encode(R_HANDSHAKE, {
                    "shard": 0, "epoch": 7, "start": 1,
                }))
                decoder = make_decoder()
                frames = []
                while not frames:
                    frames = decoder.feed(conn.recv(65536))
                ftype, payload = frames[0]
                assert ftype == R_ERROR
                assert payload["code"] == "fenced"
        fenced = obs.get_registry().get("repro_repl_fenced_total")
        assert fenced is not None and fenced.total() >= 1

    def test_standby_stops_following_a_stale_primary(
        self, tmp_path, classroom_game
    ):
        persistence = PersistenceConfig(directory=tmp_path / "primary")
        persistence.shard_dir(0).mkdir(parents=True)
        standby_root = tmp_path / "standby"
        # this standby was promoted to epoch 5 in a previous life; the
        # surviving epoch-1 source must not be followed backwards
        write_epoch(standby_root / "shard-00", 5)
        with ReplicationSource(persistence, 1) as source:
            standby = StandbyReplica(
                standby_root, classroom_game, 1,
                source.host, source.port, reconnect_backoff_s=0.01,
            ).start()
            try:
                deadline = time.monotonic() + 5
                st = standby.shard_states()[0]
                while not st.fenced and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert st.fenced
                assert st.epoch == 5
            finally:
                standby.stop()


class TestGatewayReadReplica:
    def test_replica_gateway_serves_queries_and_refuses_writes(
        self, tmp_path, classroom_game, scripts
    ):
        import asyncio

        from repro.gateway import (
            GatewayClient,
            GatewayError,
            GatewayServer,
            GatewayThread,
        )

        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ) as standby:
                sids = _submit_all(manager, classroom_game, scripts)
                assert manager.drain(timeout=30)
                manager.shutdown(drain=False)
                assert standby.wait_caught_up(_primary_tips(persistence), 10)

                # a read-only gateway in front of the standby: QUERY
                # works, mutations are bounced back to the primary
                replica_manager = SessionManager(ServeConfig(
                    n_shards=N_SHARDS, tick_interval_s=0.01,
                ))
                gw = GatewayServer(
                    replica_manager, classroom_game,
                    read_replica=standby,
                )
                script = scripts[0]

                async def drive(handle):
                    client = GatewayClient(handle.host, handle.port)
                    await client.connect()
                    try:
                        view = await client.query(sids[0])
                        with pytest.raises(GatewayError) as exc:
                            await client.submit(
                                "w#1", script.ops, dt=script.dt
                            )
                        assert exc.value.code == "read_only"
                        with pytest.raises(GatewayError) as exc:
                            await client.query("nobody")
                        assert exc.value.code == "unknown_player"
                        return view
                    finally:
                        await client.close()

                with GatewayThread(gw) as handle:
                    view = asyncio.run(drive(handle))
                assert view["player"] == sids[0]
                assert view["status"] == "done"
                assert view["digest"] == reference_digest(
                    classroom_game, script.ops, script.dt, len(script.ops),
                )

    def test_primary_gateway_answers_query_for_done_session(
        self, tmp_path, classroom_game, scripts
    ):
        import asyncio

        from repro.gateway import GatewayClient, GatewayServer, GatewayThread

        manager = SessionManager(ServeConfig(
            n_shards=N_SHARDS, tick_interval_s=0.002,
            max_steps_per_tick=50,
        ))
        gw = GatewayServer(manager, classroom_game)
        script = scripts[0]

        async def drive(handle):
            client = GatewayClient(handle.host, handle.port)
            await client.connect()
            try:
                await client.submit("q#1", script.ops, dt=script.dt)
                await client.wait_end("q#1", timeout=30)
                return await client.query("q#1")
            finally:
                await client.close()

        with GatewayThread(gw) as handle:
            view = asyncio.run(drive(handle))
        assert view["status"] == "done"
        assert view["digest"] == reference_digest(
            classroom_game, script.ops, script.dt, len(script.ops),
        )


class TestSnapshotOnlyDirectory:
    """_first_available_lsn / _tip_hint where compaction left no segments.

    A shard directory holding only a snapshot (every WAL segment
    compacted away) is the post-compaction bootstrap edge: a connecting
    standby must be offered the snapshots, and the handshake hints must
    not invent history that is no longer on disk.
    """

    def _snapshot_only_dir(self, tmp_path):
        from repro.persist.snapshot import SnapshotStore, snapshot_dir_for

        shard_dir = tmp_path / "shard-00"
        shard_dir.mkdir()
        SnapshotStore(snapshot_dir_for(shard_dir)).write(
            "snap-only#1", dt=0.1, ops=[], cursor=0,
            state={"phase": "done"}, lsn=7,
        )
        return shard_dir

    def test_empty_directory_hints(self, tmp_path):
        empty = tmp_path / "shard-01"
        empty.mkdir()
        assert ReplicationSource._first_available_lsn(empty) == 1
        assert ReplicationSource._tip_hint(empty) == 0

    def test_snapshot_only_first_available_lsn_is_one(self, tmp_path):
        shard_dir = self._snapshot_only_dir(tmp_path)
        # no segments on disk: every shippable LSN starts from 1, so
        # any standby `start` request triggers the snapshot bootstrap
        # (start < first is impossible; equality means "nothing to
        # tail yet")
        assert ReplicationSource._first_available_lsn(shard_dir) == 1

    def test_snapshot_only_tip_hint_is_zero(self, tmp_path):
        shard_dir = self._snapshot_only_dir(tmp_path)
        # the hint must not count snapshotted history as shippable tip
        assert ReplicationSource._tip_hint(shard_dir) == 0

    def test_hints_after_compaction_follow_surviving_segment(
        self, tmp_path
    ):
        from repro.persist.wal import Journal, list_segments

        shard_dir = self._snapshot_only_dir(tmp_path)
        journal = Journal(shard_dir)
        for k in range(3):
            journal.append({"t": "INPUT", "sid": "s", "k": k})
        journal.close()
        segments = list_segments(shard_dir)
        assert segments, "journal never produced a segment"
        assert ReplicationSource._first_available_lsn(shard_dir) == 1
        # simulate compaction dropping the only segment again: the
        # hints must fall back to the snapshot-only answers, not keep
        # reporting the dead segment's range
        for _, path in segments:
            path.unlink()
        assert ReplicationSource._first_available_lsn(shard_dir) == 1
        assert ReplicationSource._tip_hint(shard_dir) == 0
