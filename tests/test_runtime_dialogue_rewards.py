"""Tests for dialogue trees and the rewarding mechanism."""

import pytest

from repro.events import GiveItem
from repro.runtime import (
    Dialogue,
    DialogueChoice,
    DialogueError,
    DialogueNode,
    DialogueSession,
    GameState,
    RewardManager,
)


class TestDialogueValidation:
    def test_basic_tree(self):
        d = Dialogue(
            "d",
            [
                DialogueNode("root", "Hi", [DialogueChoice("Bye", None)]),
            ],
            root="root",
        )
        assert d.node_count == 1

    def test_unknown_root(self):
        with pytest.raises(DialogueError):
            Dialogue("d", [DialogueNode("a", "x")], root="zz")

    def test_duplicate_node(self):
        with pytest.raises(DialogueError):
            Dialogue("d", [DialogueNode("a", "x"), DialogueNode("a", "y")], root="a")

    def test_unknown_next_node(self):
        with pytest.raises(DialogueError):
            Dialogue(
                "d",
                [DialogueNode("a", "x", [DialogueChoice("go", "ghost")])],
                root="a",
            )

    def test_orphan_detected(self):
        with pytest.raises(DialogueError):
            Dialogue(
                "d",
                [DialogueNode("a", "x"), DialogueNode("orphan", "y")],
                root="a",
            )

    def test_inescapable_cycle_detected(self):
        with pytest.raises(DialogueError):
            Dialogue(
                "d",
                [
                    DialogueNode("a", "x", [DialogueChoice("loop", "b")]),
                    DialogueNode("b", "y", [DialogueChoice("loop", "a")]),
                ],
                root="a",
            )

    def test_escapable_cycle_allowed(self):
        d = Dialogue(
            "d",
            [
                DialogueNode("a", "x", [
                    DialogueChoice("again", "a"),
                    DialogueChoice("done", None),
                ]),
            ],
            root="a",
        )
        assert d.node_count == 1

    def test_linear_builder(self):
        d = Dialogue.linear("d", ["one", "two", "three"])
        assert d.node_count == 3
        s = DialogueSession(d)
        assert s.current_node.line == "one"
        s.choose(0)
        s.choose(0)
        assert s.current_node.line == "three"
        assert s.current_node.terminal

    def test_dict_roundtrip(self):
        d = Dialogue(
            "d",
            [
                DialogueNode("a", "Hello", [
                    DialogueChoice("Take it", None, actions=[GiveItem(item_id="key")]),
                    DialogueChoice("More", "b"),
                ]),
                DialogueNode("b", "Details"),
            ],
            root="a",
        )
        d2 = Dialogue.from_dict(d.to_dict())
        assert d2.node_count == 2
        assert d2.nodes["a"].choices[0].actions == [GiveItem(item_id="key")]


class TestDialogueSession:
    def _dialogue(self):
        return Dialogue(
            "d",
            [
                DialogueNode("a", "Want the key?", [
                    DialogueChoice("Yes", "thanks", actions=[GiveItem(item_id="key")]),
                    DialogueChoice("No", None),
                ]),
                DialogueNode("thanks", "Here you go."),
            ],
            root="a",
        )

    def test_choice_returns_actions(self):
        s = DialogueSession(self._dialogue())
        actions = s.choose(0)
        assert actions == [GiveItem(item_id="key")]
        assert s.current_node.node_id == "thanks"

    def test_decline_path_ends(self):
        s = DialogueSession(self._dialogue())
        s.choose(1)
        assert not s.active
        with pytest.raises(DialogueError):
            s.current_node

    def test_terminal_any_choice_closes(self):
        s = DialogueSession(self._dialogue())
        s.choose(0)
        assert s.choices == []
        assert s.choose(5) == []  # click anywhere to close
        assert not s.active

    def test_out_of_range_choice(self):
        s = DialogueSession(self._dialogue())
        with pytest.raises(DialogueError):
            s.choose(2)

    def test_transcript(self):
        s = DialogueSession(self._dialogue())
        s.choose(0)
        assert s.transcript == ["Want the key?", "> Yes", "Here you go."]


class TestRewardManager:
    def test_points_only(self):
        rm = RewardManager()
        state = GameState("s")
        rec = rm.award(state, 5, None, at_time=1.0)
        assert state.score == 5
        assert rec.reward_id is None
        assert rm.total_points_awarded == 5

    def test_reward_object_granted_once(self):
        rm = RewardManager(reward_names={"badge": "Gold badge"},
                           reward_bonuses={"badge": 10})
        state = GameState("s")
        first = rm.award(state, 5, "badge", at_time=1.0)
        assert first.points == 15  # 5 + intrinsic 10
        assert not first.repeated
        assert state.inventory.rewards[0].name == "Gold badge"

        second = rm.award(state, 5, "badge", at_time=2.0)
        assert second.points == 5  # no double intrinsic bonus
        assert second.repeated
        assert state.inventory.count("badge") == 1

    def test_full_backpack_still_scores(self):
        rm = RewardManager()
        state = GameState("s", inventory_capacity=1)
        state.inventory.add("junk")
        rec = rm.award(state, 3, "badge", at_time=0.0)
        assert state.score == 3
        assert rec.repeated  # object could not be granted
        assert not state.inventory.has("badge")

    def test_achievements_listing(self):
        rm = RewardManager()
        state = GameState("s")
        rm.award(state, 0, "b1", at_time=0.0)
        rm.award(state, 0, "b2", at_time=1.0)
        assert rm.achievements(state) == ["b1", "b2"]

    def test_ledger_serialisable(self):
        rm = RewardManager()
        state = GameState("s")
        rm.award(state, 2, None, at_time=0.5)
        d = rm.to_dict()
        assert d["ledger"][0]["points"] == 2
