"""Tests for shot-boundary detection (repro.video.shots)."""

import numpy as np
import pytest

from repro.video import (
    DetectorConfig,
    Frame,
    FrameSize,
    ShotDetector,
    ShotSpec,
    TransitionKind,
    detect_shots,
    generate_clip,
    random_shot_script,
    score_detection,
)

SIZE = FrameSize(64, 48)


class TestDifferenceSignal:
    def test_length(self, flat_clip):
        det = ShotDetector()
        sig = det.difference_signal(flat_clip.frames)
        assert sig.shape == (flat_clip.frame_count - 1,)

    def test_empty_inputs(self):
        det = ShotDetector()
        assert det.difference_signal([]).size == 0
        assert det.difference_signal([Frame.blank(SIZE)]).size == 0

    def test_cut_dominates_signal(self, flat_clip):
        sig = ShotDetector().difference_signal(flat_clip.frames)
        assert int(np.argmax(sig)) == 7  # transition 7->8 is the cut

    def test_pixel_metric_also_sees_cut(self, flat_clip):
        det = ShotDetector(DetectorConfig(metric="pixel"))
        sig = det.difference_signal(flat_clip.frames)
        assert int(np.argmax(sig)) == 7


class TestDetection:
    def test_perfect_on_clean_cuts(self, flat_clip):
        assert detect_shots(flat_clip.frames) == [8]

    def test_noisy_multi_shot_f1(self, noisy_clip):
        detected = detect_shots(noisy_clip.frames)
        p, r, f1 = score_detection(detected, noisy_clip.boundaries, tolerance=2)
        assert f1 >= 0.8

    def test_single_shot_no_boundaries(self):
        clip = generate_clip(SIZE, [ShotSpec(duration=20, top_color=(9, 9, 9), bottom_color=(40, 40, 40))])
        # With zero variance the threshold collapses; a flat clip must not
        # produce spurious cuts.
        assert detect_shots(clip.frames) == []

    def test_fade_collapsed_to_single_boundary(self):
        clip = generate_clip(
            SIZE,
            [
                ShotSpec(duration=12, top_color=(220, 40, 40), bottom_color=(130, 10, 10),
                         transition_to_next=TransitionKind.FADE, fade_frames=4),
                ShotSpec(duration=12, top_color=(40, 40, 220), bottom_color=(10, 10, 130)),
            ],
        )
        detected = detect_shots(clip.frames)
        p, r, f1 = score_detection(detected, clip.boundaries, tolerance=3)
        assert r == 1.0
        assert len(detected) <= 2  # not one boundary per fade frame

    def test_min_shot_len_pruning(self, flat_clip):
        # With a giant min_shot_len, nearby boundaries merge to one.
        cfg = DetectorConfig(min_shot_len=50)
        assert len(detect_shots(flat_clip.frames, cfg)) <= 1

    def test_detect_from_signal_matches_detect(self, noisy_clip):
        det = ShotDetector()
        sig = det.difference_signal(noisy_clip.frames)
        a = [b.frame_index for b in det.detect(noisy_clip.frames)]
        b = [b.frame_index for b in det.detect_from_signal(sig)]
        assert a == b


class TestConfigValidation:
    def test_bad_metric(self):
        with pytest.raises(ValueError):
            DetectorConfig(metric="optical-flow")

    def test_k_ordering(self):
        with pytest.raises(ValueError):
            DetectorConfig(k_hard=1.0, k_soft=2.0)

    def test_min_shot_len(self):
        with pytest.raises(ValueError):
            DetectorConfig(min_shot_len=0)


class TestScoring:
    def test_perfect(self):
        assert score_detection([5, 10], [5, 10]) == (1.0, 1.0, 1.0)

    def test_tolerance(self):
        p, r, f1 = score_detection([6, 11], [5, 10], tolerance=1)
        assert (p, r) == (1.0, 1.0)

    def test_false_positive(self):
        p, r, f1 = score_detection([5, 20], [5], tolerance=0)
        assert p == 0.5 and r == 1.0

    def test_miss(self):
        p, r, f1 = score_detection([5], [5, 30], tolerance=0)
        assert p == 1.0 and r == 0.5

    def test_empty_detected_with_truth(self):
        p, r, f1 = score_detection([], [5])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_empty_both(self):
        p, r, f1 = score_detection([], [])
        assert (p, r) == (1.0, 1.0)

    def test_one_to_one_matching(self):
        # Two detections near one truth: only one may count.
        p, r, f1 = score_detection([5, 6], [5], tolerance=2)
        assert p == 0.5 and r == 1.0


class TestAcrossRandomClips:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_f1_on_random_scripts(self, seed):
        rng = np.random.default_rng(seed)
        script = random_shot_script(4, rng, size=SIZE, min_duration=10, max_duration=16)
        clip = generate_clip(SIZE, script, seed=seed)
        detected = detect_shots(clip.frames)
        _, _, f1 = score_detection(detected, clip.boundaries, tolerance=2)
        assert f1 >= 0.75, f"seed {seed}: detected {detected} vs {clip.boundaries}"
