"""Tests for the interactive object model and kinds."""

import numpy as np
import pytest

from repro.objects import (
    ButtonObject,
    ImageObject,
    ItemObject,
    NPCObject,
    ObjectError,
    PropertyBag,
    RectHotspot,
    RewardObject,
    TextObject,
    WebLinkObject,
    object_from_dict,
)

HS = RectHotspot(10, 10, 16, 12)


class TestPropertyBag:
    def test_set_get(self):
        bag = PropertyBag()
        bag.set("color", "red")
        bag.set("count", 3)
        assert bag.get("color") == "red"
        assert bag.get("missing", 7) == 7
        assert "count" in bag and len(bag) == 2

    def test_type_locking(self):
        bag = PropertyBag({"n": 1})
        bag.set("n", 2)
        with pytest.raises(ObjectError):
            bag.set("n", "two")
        with pytest.raises(ObjectError):
            bag.set("n", True)  # bool is not int here

    def test_allowed_types_only(self):
        bag = PropertyBag()
        with pytest.raises(ObjectError):
            bag.set("xs", [1, 2])

    def test_require(self):
        bag = PropertyBag({"a": 1})
        assert bag.require("a") == 1
        with pytest.raises(ObjectError):
            bag.require("b")

    def test_equality_and_copy(self):
        a = PropertyBag({"x": 1})
        b = a.copy()
        assert a == b
        b.set("y", 2)
        assert a != b

    def test_items_sorted(self):
        bag = PropertyBag({"b": 1, "a": 2})
        assert [k for k, _ in bag.items()] == ["a", "b"]


class TestBaseObject:
    def test_id_validation(self):
        with pytest.raises(ObjectError):
            ImageObject(object_id="Bad Id!", name="x", hotspot=HS)
        with pytest.raises(ObjectError):
            ImageObject(object_id="ok", name="", hotspot=HS)

    def test_auto_id_unique(self):
        a = ImageObject(name="a", hotspot=HS)
        b = ImageObject(name="b", hotspot=HS)
        assert a.object_id != b.object_id

    def test_hit_respects_visibility(self):
        o = ImageObject(object_id="o", name="o", hotspot=HS)
        assert o.hit(12, 12)
        o.visible = False
        assert not o.hit(12, 12)

    def test_move_to(self):
        o = ImageObject(object_id="o", name="o", hotspot=HS)
        o.move_to(50, 40)
        assert o.hotspot.bounding_box()[:2] == (50, 40)

    def test_move_by(self):
        o = ImageObject(object_id="o", name="o", hotspot=HS)
        o.move_by(-5, 5)
        assert o.hotspot.bounding_box()[:2] == (5, 15)


class TestImageObject:
    def test_placeholder_pixels_match_hotspot(self):
        o = ImageObject(object_id="o", name="o", hotspot=RectHotspot(0, 0, 20, 10))
        assert o.pixels.shape == (10, 20, 3)

    def test_white_key_alpha(self):
        px = np.full((4, 4, 3), 255, dtype=np.uint8)
        px[0, 0] = (200, 10, 10)
        o = ImageObject(object_id="o", name="o", hotspot=HS, pixels=px)
        rgb, alpha = o.render_sprite()
        assert alpha[0, 0] == 1.0
        assert alpha[1, 1] == 0.0

    def test_white_key_disabled(self):
        px = np.full((4, 4, 3), 255, dtype=np.uint8)
        o = ImageObject(object_id="o", name="o", hotspot=HS, pixels=px, white_key=False)
        _, alpha = o.render_sprite()
        assert (alpha == 1.0).all()

    def test_rejects_bad_pixels(self):
        with pytest.raises(ObjectError):
            ImageObject(object_id="o", name="o", hotspot=HS,
                        pixels=np.zeros((4, 4), dtype=np.uint8))

    def test_dict_roundtrip(self):
        px = np.arange(48, dtype=np.uint8).reshape(4, 4, 3)
        o = ImageObject(object_id="img-1", name="Art", hotspot=HS, pixels=px,
                        description="nice", properties={"hot": True})
        o2 = object_from_dict(o.to_dict())
        assert isinstance(o2, ImageObject)
        assert (o2.pixels == px).all()
        assert o2.description == "nice"
        assert o2.properties.get("hot") is True


class TestOtherKinds:
    def test_button_sprite_opaque(self):
        b = ButtonObject(object_id="b", name="b", label="Go", hotspot=HS)
        rgb, alpha = b.render_sprite()
        assert (alpha == 1.0).all()
        assert rgb.shape[0] >= 4

    def test_button_requires_label(self):
        with pytest.raises(ObjectError):
            ButtonObject(object_id="b", name="b", label="", hotspot=HS)

    def test_text_requires_text(self):
        with pytest.raises(ObjectError):
            TextObject(object_id="t", name="t", text="", hotspot=HS)

    def test_weblink_validates_url(self):
        with pytest.raises(ObjectError):
            WebLinkObject(object_id="w", name="w", url="not-a-url", hotspot=HS)
        w = WebLinkObject(object_id="w", name="w", url="https://x.org/a", hotspot=HS)
        assert object_from_dict(w.to_dict()).url == "https://x.org/a"

    def test_item_defaults_portable_draggable(self):
        i = ItemObject(object_id="i", name="i", hotspot=HS)
        assert i.portable and i.draggable

    def test_reward_defaults_hidden_with_bonus(self):
        r = RewardObject(object_id="r", name="r", hotspot=HS, bonus=5)
        assert not r.visible
        assert r.bonus == 5
        r2 = object_from_dict(r.to_dict())
        assert isinstance(r2, RewardObject) and r2.bonus == 5

    def test_reward_bonus_non_negative(self):
        with pytest.raises(ObjectError):
            RewardObject(object_id="r", name="r", hotspot=HS, bonus=-1)

    def test_npc_requires_dialogue(self):
        with pytest.raises(ObjectError):
            NPCObject(object_id="n", name="n", hotspot=HS, dialogue_id="")
        n = NPCObject(object_id="n", name="n", hotspot=HS, dialogue_id="d1")
        rgb, alpha = n.render_sprite()
        assert 0.0 < float(alpha.mean()) < 1.0  # silhouette, keyed edges
        assert object_from_dict(n.to_dict()).dialogue_id == "d1"

    def test_from_dict_unknown_kind(self):
        with pytest.raises(ObjectError):
            object_from_dict({"kind": "portal"})

    def test_kind_roundtrip_all(self):
        objs = [
            ImageObject(object_id="a1", name="a", hotspot=HS),
            ButtonObject(object_id="a2", name="a", label="L", hotspot=HS),
            TextObject(object_id="a3", name="a", text="T", hotspot=HS),
            WebLinkObject(object_id="a4", name="a", url="http://x/y", hotspot=HS),
            ItemObject(object_id="a5", name="a", hotspot=HS),
            RewardObject(object_id="a6", name="a", hotspot=HS),
            NPCObject(object_id="a7", name="a", hotspot=HS, dialogue_id="d"),
        ]
        for o in objs:
            o2 = object_from_dict(o.to_dict())
            assert type(o2) is type(o)
            assert o2.object_id == o.object_id
