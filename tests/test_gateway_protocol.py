"""Robustness tests for the gateway wire protocol codec."""

import struct
import zlib

import pytest

from repro.gateway.protocol import (
    END,
    ERROR,
    FRAME_TYPES,
    HEADER,
    HELLO,
    MIN_PROTOCOL_VERSION,
    PING,
    PROTOCOL_VERSION,
    STATE,
    SUBMIT,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    VersionMismatch,
    encode_frame,
    negotiate_version,
)


def _raw_frame(ftype: int, body: bytes, version: int) -> bytes:
    """Hand-assemble a frame, bypassing encode_frame's version check."""
    head = struct.pack("<BBII", version, ftype, len(body), zlib.crc32(body))
    return head + struct.pack("<I", zlib.crc32(head)) + body


def _corrupt(frame: bytes, index: int) -> bytes:
    return frame[:index] + bytes([frame[index] ^ 0xFF]) + frame[index + 1:]


class TestEncode:
    def test_roundtrip_every_frame_type(self):
        decoder = FrameDecoder()
        for i, ftype in enumerate(sorted(FRAME_TYPES)):
            payload = {"type": ftype, "n": i, "nested": {"k": [1, 2, 3]}}
            frames = decoder.feed(encode_frame(ftype, payload))
            assert frames == [(ftype, payload)]

    def test_header_layout(self):
        frame = encode_frame(PING, {})
        version, ftype, length, pay_crc, head_crc = HEADER.unpack_from(frame)
        assert version == PROTOCOL_VERSION
        assert ftype == PING
        assert length == len(frame) - HEADER.size
        body = frame[HEADER.size:]
        assert pay_crc == zlib.crc32(body)
        assert head_crc == zlib.crc32(frame[: HEADER.size - 4])

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(99, {})

    def test_oversized_payload_rejected(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(SUBMIT, {"blob": "x" * (1 << 20)})


class TestDecoder:
    def test_truncated_frame_yields_nothing_until_complete(self):
        frame = encode_frame(STATE, {"player": "p1", "status": "admitted"})
        decoder = FrameDecoder()
        for cut in (1, HEADER.size - 1, HEADER.size, len(frame) - 1):
            assert decoder.feed(frame[:cut]) == []
            assert decoder.pending_bytes == cut
            decoder = FrameDecoder()
        # byte-at-a-time delivery still parses exactly one frame
        frames = []
        for i in range(len(frame)):
            frames.extend(decoder.feed(frame[i:i + 1]))
        assert frames == [(STATE, {"player": "p1", "status": "admitted"})]

    def test_two_frames_in_one_read(self):
        data = encode_frame(HELLO, {"client": "a"}) + encode_frame(PING, {})
        assert FrameDecoder().feed(data) == [
            (HELLO, {"client": "a"}), (PING, {}),
        ]

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(b"GET / HTTP/1.1\r\n\r\n")

    def test_header_crc_mismatch(self):
        frame = _corrupt(encode_frame(END, {"player": "p"}), index=2)
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_payload_crc_mismatch(self):
        frame = _corrupt(encode_frame(END, {"player": "p"}), index=HEADER.size)
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_version_mismatch(self):
        frame = _raw_frame(HELLO, b"{}", version=PROTOCOL_VERSION + 1)
        with pytest.raises(VersionMismatch):
            FrameDecoder().feed(frame)

    def test_oversized_announced_length_rejected_before_body_arrives(self):
        body = b"{}"
        head = struct.pack(
            "<BBII", PROTOCOL_VERSION, SUBMIT, 2 << 20, zlib.crc32(body)
        )
        frame = head + struct.pack("<I", zlib.crc32(head)) + body
        with pytest.raises(FrameTooLarge):
            FrameDecoder().feed(frame)

    def test_decoder_honours_negotiated_bound(self):
        frame = encode_frame(SUBMIT, {"blob": "x" * 4096})
        with pytest.raises(FrameTooLarge):
            FrameDecoder(max_frame_bytes=1024).feed(frame)

    def test_non_json_payload_rejected(self):
        body = b"\xff\xfe not json"
        head = struct.pack(
            "<BBII", PROTOCOL_VERSION, ERROR, len(body), zlib.crc32(body)
        )
        frame = head + struct.pack("<I", zlib.crc32(head)) + body
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        head = struct.pack(
            "<BBII", PROTOCOL_VERSION, ERROR, len(body), zlib.crc32(body)
        )
        frame = head + struct.pack("<I", zlib.crc32(head)) + body
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_unknown_frame_type_rejected(self):
        body = b"{}"
        head = struct.pack("<BBII", PROTOCOL_VERSION, 42, len(body),
                           zlib.crc32(body))
        frame = head + struct.pack("<I", zlib.crc32(head)) + body
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    def test_corruption_poisons_the_decoder(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\x00" * HEADER.size)
        # no resync: even a pristine frame is refused afterwards
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame(PING, {}))


class TestVersioning:
    """Version negotiation: old peers keep working, unknown versions do not."""

    def test_supported_window(self):
        assert MIN_PROTOCOL_VERSION == 1
        assert PROTOCOL_VERSION == 3
        assert SUPPORTED_VERSIONS == frozenset({1, 2, 3})

    def test_decoder_accepts_every_supported_version(self):
        for version in sorted(SUPPORTED_VERSIONS):
            decoder = FrameDecoder()
            frames = decoder.feed(_raw_frame(PING, b"{}", version=version))
            assert frames == [(PING, {})]
            assert decoder.last_version == version

    def test_decoder_rejects_below_window(self):
        with pytest.raises(VersionMismatch):
            FrameDecoder().feed(_raw_frame(PING, b"{}", version=0))

    def test_encode_rejects_unsupported_version(self):
        with pytest.raises(VersionMismatch):
            encode_frame(PING, {}, version=0)
        with pytest.raises(VersionMismatch):
            encode_frame(PING, {}, version=PROTOCOL_VERSION + 1)

    def test_encode_v1_roundtrips(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(HELLO, {"client": "old"},
                                           version=1))
        assert frames == [(HELLO, {"client": "old"})]
        assert decoder.last_version == 1

    def test_negotiate_takes_minimum(self):
        assert negotiate_version(1) == 1
        assert negotiate_version(2) == 2
        # a future peer speaks down to us
        assert negotiate_version(PROTOCOL_VERSION + 5) == PROTOCOL_VERSION

    def test_negotiate_rejects_prehistoric_peer(self):
        with pytest.raises(VersionMismatch):
            negotiate_version(MIN_PROTOCOL_VERSION - 1)

    def test_last_version_tracks_most_recent_frame(self):
        decoder = FrameDecoder()
        assert decoder.last_version is None
        decoder.feed(_raw_frame(PING, b"{}", version=1))
        decoder.feed(_raw_frame(PING, b"{}", version=2))
        assert decoder.last_version == 2
