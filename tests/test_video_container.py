"""Unit tests for the RVID container (repro.video.container)."""

import numpy as np
import pytest

from repro.video import Frame, FrameSize
from repro.video.container import (
    ContainerError,
    VideoReader,
    VideoWriter,
    read_video,
    write_video,
)

SIZE = FrameSize(12, 10)


def _frames(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Frame(rng.integers(0, 256, size=SIZE.shape, dtype=np.uint8))
        for _ in range(n)
    ]


@pytest.fixture()
def two_segment_bytes():
    w = VideoWriter(SIZE, fps=12.0, codec_name="rle")
    w.add_segment(_frames(4, seed=1))
    w.add_segment(_frames(6, seed=2))
    return w.tobytes()


class TestWriter:
    def test_rejects_empty_container(self):
        w = VideoWriter(SIZE)
        with pytest.raises(ContainerError):
            w.tobytes()

    def test_rejects_empty_segment(self):
        w = VideoWriter(SIZE)
        with pytest.raises(ValueError):
            w.add_segment([])

    def test_rejects_size_mismatch(self):
        w = VideoWriter(SIZE)
        with pytest.raises(ValueError):
            w.add_segment([Frame.blank(FrameSize(5, 5))])

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            VideoWriter(SIZE, fps=0)

    def test_rejects_unknown_codec_eagerly(self):
        from repro.video.codec import CodecError

        with pytest.raises(CodecError):
            VideoWriter(SIZE, codec_name="vp9")

    def test_segment_ids_sequential(self):
        w = VideoWriter(SIZE)
        assert w.add_segment(_frames(2)) == 0
        assert w.add_segment(_frames(2)) == 1

    def test_add_encoded_segment_passthrough(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        w = VideoWriter(SIZE, fps=r.fps, codec_name=r.codec_name)
        w.add_encoded_segment(r.segment_payloads(0))
        data = w.tobytes()
        r2 = VideoReader(data)
        assert r2.decode_segment(0) == r.decode_segment(0)


class TestReader:
    def test_header_fields(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        assert r.size == SIZE
        assert r.fps == pytest.approx(12.0)
        assert r.codec_name == "rle"
        assert r.segment_count == 2
        assert r.total_frames == 10

    def test_decode_segment_roundtrip(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        assert r.decode_segment(0) == _frames(4, seed=1)
        assert r.decode_segment(1) == _frames(6, seed=2)

    def test_decode_single_frame(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        assert r.decode_frame(1, 3) == _frames(6, seed=2)[3]

    def test_decode_single_frame_with_temporal_codec(self):
        w = VideoWriter(SIZE, codec_name="delta", codec_params={"intra_period": 2})
        frames = _frames(5, seed=3)
        w.add_segment(frames)
        r = VideoReader(w.tobytes())
        for k in range(5):
            assert r.decode_frame(0, k) == frames[k]

    def test_segment_duration(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        assert r.segment_duration_seconds(0) == pytest.approx(4 / 12.0)

    def test_index_offsets_consistent(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        e0, e1 = r.index
        assert e1.offset == e0.offset + e0.byte_size
        assert e0.frame_offset(0) == e0.offset
        with pytest.raises(IndexError):
            e0.frame_offset(99)

    def test_out_of_range_access(self, two_segment_bytes):
        r = VideoReader(two_segment_bytes)
        with pytest.raises(IndexError):
            r.decode_segment(2)
        with pytest.raises(IndexError):
            r.decode_frame(0, 4)

    def test_bad_magic(self):
        with pytest.raises(ContainerError):
            VideoReader(b"NOPE" + b"\x00" * 100)

    def test_truncated_payload(self, two_segment_bytes):
        with pytest.raises(ContainerError):
            VideoReader(two_segment_bytes[:-5])

    def test_truncated_header(self, two_segment_bytes):
        with pytest.raises(ContainerError):
            VideoReader(two_segment_bytes[:10])


class TestFileRoundtrip:
    def test_write_read_file(self, tmp_path):
        path = tmp_path / "clip.rvid"
        segs = [_frames(3, seed=4), _frames(2, seed=5)]
        nbytes = write_video(path, segs, fps=30.0, codec_name="delta")
        assert path.stat().st_size == nbytes
        r = read_video(path)
        assert r.fps == pytest.approx(30.0)
        assert [r.decode_segment(i) for i in range(2)] == segs

    def test_write_requires_segments(self, tmp_path):
        with pytest.raises(ValueError):
            write_video(tmp_path / "x.rvid", [])


class TestCodecChoiceMatters:
    def test_delta_smaller_than_raw_for_static_video(self):
        frames = [Frame.blank(SIZE, (60, 60, 60))] * 10
        sizes = {}
        for name in ("raw", "delta"):
            w = VideoWriter(SIZE, codec_name=name)
            w.add_segment(frames)
            sizes[name] = len(w.tobytes())
        assert sizes["delta"] < sizes["raw"] / 2
