"""Tests for snapshot rendering: Prometheus text format, tables, JSON."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    render_json,
    render_prometheus,
    render_snapshot,
    render_table,
    snapshot_rows,
)
from repro.obs.metrics import MetricsRegistry


def _sample_snapshot():
    """A private registry exercised into a known state."""
    was = obs.enabled()
    obs.enable()
    try:
        reg = MetricsRegistry()
        c = reg.counter("demo_events_total", "Demo events")
        c.inc(3, kind="click")
        c.inc(1, kind="timer")
        g = reg.gauge("demo_active", "Active somethings")
        g.set(2.5)
        h = reg.histogram("demo_latency_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg.snapshot()
    finally:
        obs.set_enabled(was)


class TestPrometheusFormat:
    def test_type_and_help_lines(self):
        text = render_prometheus(_sample_snapshot())
        assert "# HELP demo_events_total Demo events" in text
        assert "# TYPE demo_events_total counter" in text
        assert "# TYPE demo_active gauge" in text
        assert "# TYPE demo_latency_seconds histogram" in text

    def test_counter_series_with_labels(self):
        text = render_prometheus(_sample_snapshot())
        assert 'demo_events_total{kind="click"} 3' in text
        assert 'demo_events_total{kind="timer"} 1' in text

    def test_gauge_value(self):
        assert "demo_active 2.5" in render_prometheus(_sample_snapshot())

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus(_sample_snapshot())
        assert 'demo_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_latency_seconds_bucket{le="1"} 2' in text
        assert 'demo_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_latency_seconds_sum 5.55" in text
        assert "demo_latency_seconds_count 3" in text

    def test_label_values_escaped(self):
        was = obs.enabled()
        obs.enable()
        try:
            reg = MetricsRegistry()
            reg.counter("esc_total").inc(path='a"b\\c\nd')
            text = render_prometheus(reg.snapshot())
        finally:
            obs.set_enabled(was)
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_every_series_line_parses(self):
        """Each non-comment line is `name{labels} value` with float value."""
        for line in render_prometheus(_sample_snapshot()).strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            float(value_part)  # must parse
            assert name_part[0].isalpha()

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"enabled": False, "metrics": []}) == ""


class TestTableAndJson:
    def test_rows_flatten_histograms(self):
        rows = snapshot_rows(_sample_snapshot())
        by_metric = {(r["metric"], r["labels"]): r for r in rows}
        assert by_metric[("demo_events_total", "kind=click")]["value"] == "3"
        hist = by_metric[("demo_latency_seconds", "")]
        assert "n=3" in hist["value"]
        assert "mean=1.85" in hist["value"]

    def test_render_table_uses_reporting_machinery(self):
        text = render_table(_sample_snapshot())
        assert "Metrics snapshot" in text
        assert "demo_events_total" in text
        assert "metric" in text and "value" in text  # header row

    def test_render_json_roundtrips(self):
        data = json.loads(render_json(_sample_snapshot()))
        names = [m["name"] for m in data["metrics"]]
        assert "demo_events_total" in names

    def test_render_snapshot_dispatch(self):
        snap = _sample_snapshot()
        assert render_snapshot(snap, "prometheus").startswith("# HELP")
        assert "Metrics snapshot" in render_snapshot(snap, "table")
        json.loads(render_snapshot(snap, "json"))
        with pytest.raises(ValueError):
            render_snapshot(snap, "xml")
