"""Tests for the authoring undo/redo stack."""

import pytest

from repro.core import (
    Command,
    CommandRecorder,
    GameProject,
    ObjectEditor,
    ScenarioEditor,
    UndoError,
    UndoStack,
)
from repro.core.templates import scene_footage
from repro.events import ShowText, Trigger
from repro.objects import RectHotspot
from repro.video import FrameSize

SIZE = FrameSize(48, 36)


@pytest.fixture()
def workspace():
    project = GameProject("U")
    scenes = ScenarioEditor(project)
    objects = ObjectEditor(project)
    scenes.import_footage("clip", scene_footage(SIZE, 1, duration=4))
    scenes.commit_whole("clip")
    scenes.create_scenario("room", "Room", "clip")
    recorder = CommandRecorder(project, objects)
    return project, objects, recorder


class TestUndoStack:
    def _counter_command(self, state, label="inc"):
        return Command(
            label=label,
            do=lambda: state.__setitem__("n", state["n"] + 1),
            undo=lambda: state.__setitem__("n", state["n"] - 1),
        )

    def test_execute_undo_redo(self):
        stack = UndoStack()
        state = {"n": 0}
        stack.execute(self._counter_command(state))
        assert state["n"] == 1
        assert stack.undo() == "inc"
        assert state["n"] == 0
        assert stack.redo() == "inc"
        assert state["n"] == 1

    def test_empty_operations_raise(self):
        stack = UndoStack()
        with pytest.raises(UndoError):
            stack.undo()
        with pytest.raises(UndoError):
            stack.redo()

    def test_new_command_truncates_redo(self):
        stack = UndoStack()
        state = {"n": 0}
        stack.execute(self._counter_command(state, "a"))
        stack.undo()
        stack.execute(self._counter_command(state, "b"))
        assert not stack.can_redo

    def test_labels(self):
        stack = UndoStack()
        state = {"n": 0}
        stack.execute(self._counter_command(state, "first"))
        assert stack.undo_label == "first"
        stack.undo()
        assert stack.redo_label == "first"

    def test_history_limit(self):
        stack = UndoStack(limit=2)
        state = {"n": 0}
        for label in ("a", "b", "c"):
            stack.execute(self._counter_command(state, label))
        assert len(stack) == 2
        stack.undo()
        stack.undo()
        with pytest.raises(UndoError):
            stack.undo()  # "a" fell off the history
        assert state["n"] == 1

    def test_clear(self):
        stack = UndoStack()
        stack.execute(Command("x", lambda: None, lambda: None))
        stack.clear()
        assert not stack.can_undo and not stack.can_redo

    def test_limit_validation(self):
        with pytest.raises(UndoError):
            UndoStack(limit=0)


class TestCommandRecorder:
    def test_place_undo_redo(self, workspace):
        project, objects, recorder = workspace
        recorder.place(objects.place_item, "room", "key", "Key",
                       RectHotspot(1, 1, 4, 4))
        assert project.scenarios["room"].has_object("key")
        recorder.stack.undo()
        assert not project.scenarios["room"].has_object("key")
        recorder.stack.redo()
        assert project.scenarios["room"].has_object("key")

    def test_remove_undo(self, workspace):
        project, objects, recorder = workspace
        objects.place_item("room", "key", "Key", RectHotspot(1, 1, 4, 4))
        recorder.remove_object("key")
        assert not project.scenarios["room"].has_object("key")
        recorder.stack.undo()
        assert project.scenarios["room"].has_object("key")

    def test_move_undo_restores_hotspot(self, workspace):
        project, objects, recorder = workspace
        obj = objects.place_item("room", "key", "Key", RectHotspot(1, 1, 4, 4))
        recorder.move_object("key", 20, 10)
        assert obj.hotspot.bounding_box()[:2] == (20, 10)
        recorder.stack.undo()
        assert obj.hotspot.bounding_box()[:2] == (1, 1)

    def test_description_undo(self, workspace):
        project, objects, recorder = workspace
        obj = objects.place_item("room", "key", "Key", RectHotspot(1, 1, 4, 4),
                                 description="old")
        recorder.set_description("key", "new")
        assert obj.description == "new"
        recorder.stack.undo()
        assert obj.description == "old"

    def test_bind_unbind_roundtrip(self, workspace):
        project, objects, recorder = workspace
        objects.place_item("room", "key", "Key", RectHotspot(1, 1, 4, 4))
        bid = recorder.bind("room", Trigger.CLICK, object_id="key",
                            actions=[ShowText(text="hi")])
        assert len(project.events) == 1
        recorder.stack.undo()
        assert len(project.events) == 0
        recorder.stack.redo()
        assert len(project.events) == 1
        recorder.unbind(bid)
        assert len(project.events) == 0
        recorder.stack.undo()
        assert project.events.get(bid).binding_id == bid

    def test_interleaved_history(self, workspace):
        """A realistic session: place, bind, move, then unwind all of it."""
        project, objects, recorder = workspace
        recorder.place(objects.place_item, "room", "key", "Key",
                       RectHotspot(1, 1, 4, 4))
        recorder.bind("room", Trigger.CLICK, object_id="key",
                      actions=[ShowText(text="hi")])
        recorder.move_object("key", 30, 20)
        assert len(recorder.stack) == 3
        while recorder.stack.can_undo:
            recorder.stack.undo()
        assert len(project.events) == 0
        assert not project.scenarios["room"].has_object("key")
