"""Tests for simulated students, play policies and the baselines."""

import numpy as np
import pytest

from repro.baselines import (
    LinearVideoLesson,
    SlideshowLesson,
    build_scripted_classroom_game,
    build_time_map,
    page_windows,
    run_comparison,
    run_linear_cohort,
    run_slideshow_cohort,
    simulate_slideshow,
    simulate_watch,
)
from repro.core.solver import solve
from repro.learning import DeliveryPoint, KnowledgeItem, KnowledgeMap
from repro.students import (
    ARCHETYPES,
    AttentionModel,
    run_vgbl_cohort,
    sample_profile,
    simulate_play,
)


def _profile(seed=0, archetype="achiever"):
    return sample_profile("p", np.random.default_rng(seed), archetype=archetype)


def _kmap(game):
    kmap = KnowledgeMap()
    kmap.add(KnowledgeItem("k-fix", "parts fix machines"),
             [DeliveryPoint(kind="binding",
                            ref=[b.binding_id for b in game.events
                                 if b.trigger == "use_item"][0])])
    kmap.add(KnowledgeItem("k-market", "markets sell parts"),
             [DeliveryPoint(kind="enter", ref="market")])
    kmap.add(KnowledgeItem("k-computer", "what a RAM module looks like"),
             [DeliveryPoint(kind="examine", ref="computer")])
    kmap.add(KnowledgeItem("k-ram", "where RAM goes in a computer"),
             [DeliveryPoint(kind="examine", ref="ram")])
    kmap.add(KnowledgeItem("k-teacher", "how to report a broken machine"),
             [DeliveryPoint(kind="dialogue", ref="dlg-teacher:n0")])
    return kmap


class TestProfilesAndAttention:
    def test_sample_within_bands(self):
        for arch, bands in ARCHETYPES.items():
            p = _profile(3, arch)
            for field, (lo, hi) in bands.items():
                assert lo <= getattr(p, field) <= hi

    def test_unknown_archetype(self):
        with pytest.raises(ValueError):
            sample_profile("p", np.random.default_rng(0), archetype="genius")

    def test_mix_sampling_deterministic(self):
        a = sample_profile("p", np.random.default_rng(5))
        b = sample_profile("p", np.random.default_rng(5))
        assert a == b

    def test_decay_monotone(self):
        att = AttentionModel(_profile())
        l0 = att.level
        att.decay(60.0)
        assert att.level < l0

    def test_decay_exact_exponential(self):
        p = _profile()
        att = AttentionModel(p, initial=1.0)
        att.decay(p.attention_span)
        assert att.level == pytest.approx(np.exp(-1), rel=1e-6)

    def test_boost_and_clamp(self):
        att = AttentionModel(_profile(), initial=0.95)
        att.event("reward")
        assert att.level == 1.0
        att2 = AttentionModel(_profile(), initial=0.05)
        for _ in range(10):
            att2.event("nothing")
        assert att2.level == 0.0

    def test_unknown_event(self):
        with pytest.raises(ValueError):
            AttentionModel(_profile()).event("lightning")

    def test_dropout_threshold(self):
        p = _profile()
        att = AttentionModel(p, initial=p.dropout_threshold + 0.01)
        assert not att.dropped_out
        att.decay(p.attention_span * 3)
        assert att.dropped_out

    def test_mean_level_time_weighted(self):
        att = AttentionModel(_profile(), initial=1.0)
        att.decay(100.0)
        assert att.level < att.mean_level < 1.0


class TestSimulatedPlay:
    def test_achievers_usually_win(self, classroom_game):
        rng = np.random.default_rng(0)
        wins = 0
        for k in range(10):
            p = sample_profile(f"a{k}", rng, archetype="achiever")
            res = simulate_play(classroom_game, p, rng, max_seconds=900)
            wins += res.completed
        assert wins >= 8

    def test_result_fields_consistent(self, classroom_game):
        rng = np.random.default_rng(1)
        res = simulate_play(classroom_game, _profile(1), rng)
        assert res.interactions == len(res.attention_trace)
        assert res.time_on_task > 0
        assert "classroom" in res.entered_scenarios
        assert 0.0 <= res.final_attention <= 1.0

    def test_max_actions_bound(self, classroom_game):
        rng = np.random.default_rng(2)
        res = simulate_play(classroom_game, _profile(2), rng, max_actions=3)
        assert res.interactions <= 3

    def test_deterministic_given_seed(self, classroom_game):
        a = simulate_play(classroom_game, _profile(3), np.random.default_rng(9))
        b = simulate_play(classroom_game, _profile(3), np.random.default_rng(9))
        assert a.interactions == b.interactions
        assert a.time_on_task == pytest.approx(b.time_on_task)


class TestVgblCohort:
    def test_summary_shape(self, classroom_game):
        summary, records = run_vgbl_cohort(
            classroom_game, _kmap(classroom_game), n_students=8, seed=1
        )
        assert summary.n == 8 and len(records) == 8
        assert summary.platform == "vgbl"
        assert 0.0 <= summary.completion_rate <= 1.0

    def test_needs_students(self, classroom_game):
        with pytest.raises(ValueError):
            run_vgbl_cohort(classroom_game, _kmap(classroom_game), 0, seed=1)


class TestLinearVideo:
    def test_lesson_validation(self):
        with pytest.raises(ValueError):
            LinearVideoLesson(duration=0)
        with pytest.raises(ValueError):
            LinearVideoLesson(duration=10, shot_changes=(20.0,))

    def test_attentive_student_completes(self):
        lesson = LinearVideoLesson(duration=120.0)
        res = simulate_watch(lesson, _profile(0, "achiever"), np.random.default_rng(0))
        assert res.completed
        assert res.time_on_task == pytest.approx(120.0)

    def test_struggler_drops_out_of_long_video(self):
        lesson = LinearVideoLesson(duration=3000.0)
        res = simulate_watch(lesson, _profile(1, "struggler"), np.random.default_rng(1))
        assert res.dropped_out
        assert res.time_on_task < 3000.0

    def test_interactions_minimal(self):
        lesson = LinearVideoLesson(duration=300.0)
        res = simulate_watch(lesson, _profile(2, "achiever"), np.random.default_rng(2))
        assert res.interactions <= 2


class TestSlideshow:
    def test_lesson_validation(self):
        with pytest.raises(ValueError):
            SlideshowLesson(n_pages=0)
        with pytest.raises(ValueError):
            SlideshowLesson(n_pages=2, seconds_per_page=0)

    def test_page_windows_tile_duration(self):
        lesson = SlideshowLesson(n_pages=4, seconds_per_page=30)
        windows = page_windows(lesson)
        assert windows[0] == (0, 30)
        assert windows[-1] == (90, 120)

    def test_exposed_time_counts_finished_pages(self):
        lesson = SlideshowLesson(n_pages=5, seconds_per_page=30)
        res, exposed = simulate_slideshow(lesson, _profile(3, "achiever"),
                                          np.random.default_rng(3))
        assert exposed == res.scenarios_visited * 30
        assert res.interactions == res.scenarios_visited


class TestTimeMap:
    def test_build_time_map_slices(self, classroom_game):
        kmap = _kmap(classroom_game)
        tmap = build_time_map(kmap, 100.0)
        assert len(tmap) == len(kmap)
        # watching everything exposes everything, passively
        exp = tmap.exposures_from_session(set(), set(), set(), set(), 100.0)
        assert set(exp) == {i.item_id for i in kmap.items}
        assert not any(exp.values())

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            build_time_map(KnowledgeMap(), 10.0)


class TestComparison:
    def test_paper_ordering_holds(self, classroom_game):
        results = run_comparison(
            classroom_game, _kmap(classroom_game),
            n_students=25, seed=11, lesson_duration=500.0,
        )
        vgbl = results["vgbl"]
        lin = results["linear_video"]
        sli = results["slideshow"]
        assert vgbl.mean_knowledge_gain > max(lin.mean_knowledge_gain,
                                              sli.mean_knowledge_gain)
        assert vgbl.dropout_rate <= min(lin.dropout_rate, sli.dropout_rate)
        assert vgbl.mean_final_engagement > lin.mean_final_engagement
        assert sli.mean_interactions > lin.mean_interactions

    def test_cohort_runners_platform_labels(self, classroom_game):
        kmap = _kmap(classroom_game)
        lin, _ = run_linear_cohort(kmap, 300.0, 5, seed=1)
        sli, _ = run_slideshow_cohort(kmap, 300.0, 5, seed=1)
        assert lin.platform == "linear_video"
        assert sli.platform == "slideshow"


class TestScriptedBaseline:
    def test_behaviourally_equivalent(self, classroom_game):
        scripted, _ = build_scripted_classroom_game()
        a = solve(scripted)
        b = solve(classroom_game)
        assert a.winnable and b.winnable
        assert len(a.winning_script) == len(b.winning_script)

    def test_requires_programmer_and_specialist(self):
        _, ledger = build_scripted_classroom_game()
        report = ledger.report()
        assert report.ops_by_skill.get("programmer", 0) >= 5
        assert report.ops_by_skill.get("specialist", 0) >= 3
        assert report.max_skill_required == "specialist"

    def test_costlier_than_wizard(self, classroom_wizard):
        _, scripted_ledger = build_scripted_classroom_game()
        wizard_cost = classroom_wizard.ledger.report().weighted_cost
        scripted_cost = scripted_ledger.report().weighted_cost
        assert scripted_cost > 3 * wizard_cost
