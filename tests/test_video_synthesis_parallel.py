"""Tests for synthetic footage generation and the parallel kernels."""

import numpy as np
import pytest

from repro.video import (
    DetectorConfig,
    FrameSize,
    MovingSprite,
    ShotDetector,
    ShotSpec,
    TransitionKind,
    chunk_spans,
    generate_clip,
    parallel_difference_signal,
    parallel_encode_segments,
    random_shot_script,
)

SIZE = FrameSize(32, 24)


class TestShotSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShotSpec(duration=0, top_color=(0, 0, 0), bottom_color=(0, 0, 0))
        with pytest.raises(ValueError):
            ShotSpec(duration=5, top_color=(0, 0, 0), bottom_color=(0, 0, 0),
                     transition_to_next="wipe")
        with pytest.raises(ValueError):
            ShotSpec(duration=5, top_color=(0, 0, 0), bottom_color=(0, 0, 0),
                     transition_to_next=TransitionKind.FADE, fade_frames=0)

    def test_sprite_position(self):
        s = MovingSprite(color=(1, 2, 3), radius=2, start_xy=(10.0, 5.0),
                         velocity_xy=(1.5, -0.5))
        assert s.position_at(0) == (10, 5)
        assert s.position_at(4) == (16, 3)


class TestGenerateClip:
    def test_frame_counts_and_spans(self):
        clip = generate_clip(
            SIZE,
            [
                ShotSpec(duration=6, top_color=(200, 0, 0), bottom_color=(90, 0, 0)),
                ShotSpec(duration=4, top_color=(0, 0, 200), bottom_color=(0, 0, 90)),
            ],
        )
        assert clip.frame_count == 10
        assert clip.boundaries == [6]
        assert clip.shot_spans == [(0, 6), (6, 10)]
        assert clip.size == SIZE
        assert clip.duration_seconds == pytest.approx(10 / 24.0)

    def test_fade_inserts_frames(self):
        clip = generate_clip(
            SIZE,
            [
                ShotSpec(duration=5, top_color=(200, 0, 0), bottom_color=(90, 0, 0),
                         transition_to_next=TransitionKind.FADE, fade_frames=3),
                ShotSpec(duration=5, top_color=(0, 0, 200), bottom_color=(0, 0, 90)),
            ],
        )
        assert clip.frame_count == 13
        assert clip.boundaries == [6]  # midpoint of the fade window
        assert clip.shot_spans == [(0, 5), (8, 13)]

    def test_deterministic_with_seed(self):
        spec = [ShotSpec(duration=4, top_color=(10, 10, 10),
                         bottom_color=(50, 50, 50), noise_level=6)]
        a = generate_clip(SIZE, spec, seed=9)
        b = generate_clip(SIZE, spec, seed=9)
        assert a.frames == b.frames

    def test_noise_requires_seed(self):
        spec = [ShotSpec(duration=2, top_color=(0, 0, 0), bottom_color=(0, 0, 0),
                         noise_level=3)]
        with pytest.raises(ValueError):
            generate_clip(SIZE, spec)

    def test_requires_shots(self):
        with pytest.raises(ValueError):
            generate_clip(SIZE, [])

    def test_sprites_move(self):
        spec = [ShotSpec(duration=6, top_color=(0, 0, 0), bottom_color=(0, 0, 0),
                         sprites=[MovingSprite((255, 255, 255), 3, (5.0, 12.0), (3.0, 0.0))])]
        clip = generate_clip(SIZE, spec)
        assert clip.frames[0] != clip.frames[5]


class TestRandomScript:
    def test_consecutive_palettes_differ(self):
        rng = np.random.default_rng(3)
        shots = random_shot_script(6, rng, size=SIZE)
        for a, b in zip(shots, shots[1:]):
            dist = np.abs(
                np.asarray(a.top_color, dtype=int) - np.asarray(b.top_color, dtype=int)
            ).sum()
            assert dist >= 160

    def test_bounds_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_shot_script(0, rng)
        with pytest.raises(ValueError):
            random_shot_script(2, rng, min_duration=10, max_duration=5)


class TestChunkSpans:
    def test_balanced(self):
        assert chunk_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_fewer_items_than_chunks(self):
        assert chunk_spans(2, 5) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_spans(0, 3) == []

    def test_covers_range_exactly(self):
        for n in (1, 7, 23):
            for k in (1, 2, 5):
                spans = chunk_spans(n, k)
                assert spans[0][0] == 0 and spans[-1][1] == n
                for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
                    assert e0 == s1

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_spans(-1, 2)
        with pytest.raises(ValueError):
            chunk_spans(5, 0)


class TestParallelKernels:
    @pytest.fixture(scope="class")
    def clip(self):
        rng = np.random.default_rng(11)
        return generate_clip(
            SIZE, random_shot_script(3, rng, size=SIZE, min_duration=8, max_duration=12),
            seed=11,
        )

    def test_signal_matches_serial(self, clip):
        serial = ShotDetector().difference_signal(clip.frames)
        parallel, stats = parallel_difference_signal(clip.frames, max_workers=2, min_chunk=4)
        assert np.allclose(serial, parallel)
        assert stats.workers_requested == 2

    def test_signal_serial_path_for_small_input(self, clip):
        _, stats = parallel_difference_signal(clip.frames[:5], max_workers=4)
        assert stats.workers_used == 1

    def test_signal_respects_metric(self, clip):
        cfg = DetectorConfig(metric="pixel")
        serial = ShotDetector(cfg).difference_signal(clip.frames)
        parallel, _ = parallel_difference_signal(clip.frames, config=cfg, max_workers=2, min_chunk=4)
        assert np.allclose(serial, parallel)

    def test_encode_matches_serial(self, clip):
        segments = [clip.frames[:8], clip.frames[8:16], clip.frames[16:]]
        par, stats = parallel_encode_segments(segments, codec_name="rle", max_workers=2)
        ser, _ = parallel_encode_segments(segments, codec_name="rle", max_workers=1)
        assert par == ser
        assert stats.chunks == 3

    def test_encode_delta_with_params(self, clip):
        segments = [clip.frames[:6], clip.frames[6:12]]
        par, _ = parallel_encode_segments(
            segments, codec_name="delta", codec_params={"intra_period": 3}, max_workers=2
        )
        ser, _ = parallel_encode_segments(
            segments, codec_name="delta", codec_params={"intra_period": 3}, max_workers=1
        )
        assert par == ser

    def test_encode_requires_segments(self):
        with pytest.raises(ValueError):
            parallel_encode_segments([])

    def test_invalid_workers(self, clip):
        with pytest.raises(ValueError):
            parallel_difference_signal(clip.frames, max_workers=-2)

    def test_workers_used_capped_by_spans(self, clip):
        """With fewer spans than workers, stats report the real count."""
        _, stats = parallel_difference_signal(
            clip.frames, max_workers=8, min_chunk=4
        )
        assert stats.workers_used == min(8, stats.chunks)
        assert stats.workers_used <= stats.workers_requested

    def test_encode_workers_used_capped_by_segments(self, clip):
        segments = [clip.frames[:8], clip.frames[8:]]
        _, stats = parallel_encode_segments(
            segments, codec_name="rle", max_workers=6
        )
        assert stats.workers_used == 2  # only two segments to hand out


class TestBrokenPoolFallback:
    """Workers dying mid-run must degrade to serial, not crash."""

    @pytest.fixture(scope="class")
    def clip(self):
        rng = np.random.default_rng(13)
        return generate_clip(
            SIZE,
            random_shot_script(3, rng, size=SIZE, min_duration=8,
                               max_duration=12),
            seed=13,
        )

    @pytest.fixture()
    def broken_pool(self, monkeypatch):
        """Make every pool die as soon as work is mapped onto it."""
        import repro.video.parallel as par
        from concurrent.futures.process import BrokenProcessPool

        class DyingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, jobs):
                raise BrokenProcessPool("worker killed (simulated)")

        monkeypatch.setattr(par, "ProcessPoolExecutor", DyingPool)

    def test_diff_signal_survives_broken_pool(self, clip, broken_pool):
        serial = ShotDetector().difference_signal(clip.frames)
        signal, stats = parallel_difference_signal(
            clip.frames, max_workers=2, min_chunk=4
        )
        assert stats.fell_back_to_serial
        assert stats.workers_used == 1
        assert np.allclose(signal, serial)

    def test_encode_survives_broken_pool(self, clip, broken_pool):
        segments = [clip.frames[:8], clip.frames[8:]]
        par_out, stats = parallel_encode_segments(
            segments, codec_name="rle", max_workers=2
        )
        assert stats.fell_back_to_serial
        ser_out, _ = parallel_encode_segments(
            segments, codec_name="rle", max_workers=1
        )
        assert par_out == ser_out
