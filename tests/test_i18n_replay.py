"""Tests for localisation and input recording/replay."""

import pytest

from repro.core import (
    LocalePack,
    extract_strings,
    localize_game,
    missing_translations,
    solve,
)
from repro.runtime import (
    InputRecorder,
    MouseClick,
    MouseDrag,
    Recording,
    ReplayMismatch,
    replay,
)


class TestExtractStrings:
    def test_covers_all_surfaces(self, classroom_game):
        strings = extract_strings(classroom_game)
        assert "Classroom" in strings                 # scenario title
        assert "Computer" in strings                  # object name
        assert "It will not boot." in strings         # description
        assert "To market" in strings                 # button label
        assert "The computer boots!" in strings       # ShowText action
        assert "The computer is broken." in strings   # dialogue line
        assert "(continue)" in strings                # dialogue choice

    def test_deduplicated_and_stable(self, classroom_game):
        a = extract_strings(classroom_game)
        b = extract_strings(classroom_game)
        assert a == b
        assert len(a) == len(set(a))


class TestLocalize:
    def _pack(self, game):
        pack = LocalePack("de")
        for s in extract_strings(game):
            pack.add(s, f"DE[{s}]")
        return pack

    def test_missing_translations(self, classroom_game):
        pack = LocalePack("de")
        missing = missing_translations(classroom_game, pack)
        assert "Classroom" in missing
        pack.add("Classroom", "Klassenzimmer")
        assert "Classroom" not in missing_translations(classroom_game, pack)

    def test_localized_strings_swapped(self, classroom_game):
        pack = self._pack(classroom_game)
        localized = localize_game(classroom_game, pack)
        assert localized.scenarios["classroom"].title == "DE[Classroom]"
        obj = localized.scenarios["classroom"].get_object("computer")
        assert obj.description == "DE[It will not boot.]"
        lines = [n.line for d in localized.dialogues.values()
                 for n in d.nodes.values()]
        assert all(line.startswith("DE[") for line in lines)

    def test_ids_and_structure_unchanged(self, classroom_game):
        pack = self._pack(classroom_game)
        localized = localize_game(classroom_game, pack)
        assert set(localized.scenarios) == set(classroom_game.scenarios)
        assert localized.container is classroom_game.container
        assert [b.binding_id for b in localized.events] == [
            b.binding_id for b in classroom_game.events
        ]

    def test_localized_game_still_winnable_same_length(self, classroom_game):
        pack = self._pack(classroom_game)
        localized = localize_game(classroom_game, pack)
        a = solve(classroom_game)
        b = solve(localized)
        assert b.winnable
        assert len(a.winning_script) == len(b.winning_script)

    def test_original_untouched(self, classroom_game):
        title_before = classroom_game.scenarios["classroom"].title
        localize_game(classroom_game, self._pack(classroom_game))
        assert classroom_game.scenarios["classroom"].title == title_before

    def test_fallback_for_untranslated(self, classroom_game):
        pack = LocalePack("fr", {"Classroom": "Salle de classe"})
        localized = localize_game(classroom_game, pack)
        assert localized.scenarios["classroom"].title == "Salle de classe"
        assert localized.scenarios["market"].title == "Market"  # fallback

    def test_locale_validation(self):
        with pytest.raises(ValueError):
            LocalePack("")
        pack = LocalePack("x")
        with pytest.raises(ValueError):
            pack.add("", "y")


class TestReplay:
    def _record_win(self, game):
        engine = game.new_engine(with_video=False)
        engine.start()
        rec = InputRecorder(engine, game.title)
        go = game.scenarios["classroom"].get_object(
            "classroom-go-market").hotspot.center()
        back = game.scenarios["market"].get_object(
            "market-go-classroom").hotspot.center()
        ram = game.scenarios["market"].get_object("ram").hotspot.center()
        pc = game.scenarios["classroom"].get_object("computer").hotspot.center()
        rec.handle_input(MouseClick(*go))
        rec.tick(0.5)
        rec.handle_input(MouseDrag(ram[0], ram[1], 2, engine.layout.inv_y + 2))
        rec.handle_input(MouseClick(*back))
        rec.handle_input(MouseClick(engine.layout.inv_x + 2,
                                    engine.layout.inv_y + 2))
        rec.handle_input(MouseClick(*pc))
        return rec.finish()

    def test_record_and_replay_exact(self, classroom_game):
        recording = self._record_win(classroom_game)
        assert recording.expected_outcome == "won"
        engine = replay(classroom_game, recording)
        assert engine.state.outcome == "won"
        assert engine.state.score == recording.expected_score

    def test_json_roundtrip(self, classroom_game):
        recording = self._record_win(classroom_game)
        restored = Recording.from_json(recording.to_json())
        assert len(restored) == len(recording)
        engine = replay(classroom_game, restored)
        assert engine.state.outcome == "won"

    def test_broken_edit_detected(self, classroom_game, classroom_wizard):
        """Re-author the game with the puzzle removed: replay must flag it."""
        recording = self._record_win(classroom_game)
        project = classroom_wizard.project
        # Break the game: remove the winning binding.
        use = [b for b in project.events if b.trigger == "use_item"][0]
        project.events.remove(use.binding_id)
        broken = project.compile()
        with pytest.raises(ReplayMismatch):
            replay(broken, recording)
        # Restore for other tests sharing the fixture.
        project.events.add(use)

    def test_non_strict_returns_engine(self, classroom_game):
        recording = self._record_win(classroom_game)
        recording.expected_score = 99999
        engine = replay(classroom_game, recording, strict=False)
        assert engine.state.outcome == "won"

    def test_replay_dialogue_choices(self, classroom_game):
        engine = classroom_game.new_engine(with_video=False)
        engine.start()
        rec = InputRecorder(engine, classroom_game.title)
        teacher = classroom_game.scenarios["classroom"].get_object(
            "teacher").hotspot.center()
        rec.handle_input(MouseClick(*teacher))
        rec.choose_dialogue(0)
        recording = rec.finish()
        replayed = replay(classroom_game, recording)
        assert replayed.state.outcome is None  # talked, no win — consistent
