"""Tests for the delivery substrate: channel, streaming, devices."""

import numpy as np
import pytest

from repro.graph import build_graph
from repro.net import (
    Channel,
    KeyboardMouse,
    PDA,
    PREFETCH_POLICIES,
    RemoteControl,
    StreamSession,
    Tablet,
    make_device,
)
from repro.runtime import MouseClick, MouseDrag
from repro.video import VideoReader


@pytest.fixture(scope="module")
def game_parts(classroom_game):
    reader = VideoReader(classroom_game.container)
    graph = build_graph(classroom_game.scenarios, classroom_game.events,
                        classroom_game.start)
    return reader, graph


class TestChannel:
    def test_latency_plus_serialisation(self):
        ch = Channel(bandwidth_bps=1000, latency_s=0.5)
        t = ch.request(2000, now=0.0)
        assert t.started_at == pytest.approx(0.5)
        assert t.finished_at == pytest.approx(2.5)

    def test_fifo_queueing(self):
        ch = Channel(bandwidth_bps=1000, latency_s=0.0)
        a = ch.request(1000, now=0.0)   # finishes at 1.0
        b = ch.request(1000, now=0.0)   # queued behind a
        assert b.started_at == pytest.approx(a.finished_at)
        assert b.finished_at == pytest.approx(2.0)

    def test_idle_gap_respected(self):
        ch = Channel(bandwidth_bps=1000, latency_s=0.0)
        ch.request(1000, now=0.0)
        t = ch.request(1000, now=5.0)
        assert t.started_at == pytest.approx(5.0)

    def test_accounting_and_reset(self):
        ch = Channel(bandwidth_bps=1000)
        ch.request(300, 0.0)
        ch.request(700, 0.0)
        assert ch.bytes_transferred == 1000
        ch.reset()
        assert ch.bytes_transferred == 0
        assert ch.busy_until() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            Channel(bandwidth_bps=100, latency_s=-1)
        with pytest.raises(ValueError):
            Channel(bandwidth_bps=100).request(-1, 0.0)


class TestStreaming:
    PATH = [("classroom", 10.0), ("market", 10.0), ("classroom", 5.0)]

    def test_policies_accepted(self, game_parts):
        reader, graph = game_parts
        for policy in PREFETCH_POLICIES:
            StreamSession(reader, graph, Channel(1e6), policy=policy)
        with pytest.raises(ValueError):
            StreamSession(reader, graph, Channel(1e6), policy="psychic")

    def test_first_switch_always_stalls(self, game_parts):
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6), policy="successors")
        stats = sess.play_path(self.PATH)
        assert stats.switches[0].startup_delay > 0

    def test_prefetch_reduces_mean_delay(self, game_parts):
        reader, graph = game_parts
        results = {}
        for policy in ("none", "successors"):
            sess = StreamSession(reader, graph, Channel(200_000, 0.05),
                                 policy=policy)
            results[policy] = sess.play_path(self.PATH)
        assert (results["successors"].mean_startup_delay
                < results["none"].mean_startup_delay)
        assert (results["successors"].instant_switch_fraction
                > results["none"].instant_switch_fraction)

    def test_revisit_is_instant(self, game_parts):
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(200_000), policy="none")
        stats = sess.play_path(self.PATH)
        # third entry revisits the classroom segment: already cached
        assert stats.switches[2].startup_delay == pytest.approx(0.0)

    def test_bytes_accounting(self, game_parts):
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6), policy="all")
        stats = sess.play_path([("classroom", 1.0)])
        total = sum(e.byte_size for e in reader.index)
        assert stats.bytes_fetched == total
        # market segment was fetched but never played
        assert stats.bytes_wasted > 0

    def test_no_waste_without_prefetch(self, game_parts):
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6), policy="none")
        stats = sess.play_path(self.PATH)
        assert stats.bytes_wasted == 0

    def test_repeated_play_path_bytes_accounting(self, game_parts):
        """A reused session must not carry byte counts across paths.

        Before the fix, the second ``play_path`` call reported
        ``channel.bytes_transferred`` since the channel was *created*,
        double-counting the first path's traffic.
        """
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6), policy="none")
        first = sess.play_path([("classroom", 1.0)])
        second = sess.play_path([("market", 1.0)])
        assert first.bytes_fetched > 0
        # classroom is resident from the first path, so only the market
        # segment is fetched — not first + second combined.
        market = reader.index[graph.scenarios["market"].segment_ref].byte_size
        assert second.bytes_fetched == market
        assert second.bytes_fetched < first.bytes_fetched + market

    def test_shared_channel_bytes_accounting(self, game_parts):
        """Two sessions on one channel only see their own traffic."""
        reader, graph = game_parts
        channel = Channel(1e6)
        a = StreamSession(reader, graph, channel, policy="none")
        b = StreamSession(reader, graph, channel, policy="none")
        stats_a = a.play_path([("classroom", 1.0)])
        stats_b = b.play_path([("market", 1.0)])
        assert stats_a.bytes_fetched > 0
        market = reader.index[graph.scenarios["market"].segment_ref].byte_size
        assert stats_b.bytes_fetched == market

    def test_repeated_play_path_waste_accounting(self, game_parts):
        """bytes_wasted is per-path too: a prefetch wasted on path one
        must not be re-reported as waste by a pathless second run."""
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6), policy="all")
        first = sess.play_path([("classroom", 1.0)])
        assert first.bytes_wasted > 0
        # Second path plays everything already resident: nothing new is
        # fetched, so nothing can be wasted.
        second = sess.play_path([("classroom", 1.0), ("market", 1.0)])
        assert second.bytes_fetched == 0
        assert second.bytes_wasted == 0

    def test_path_validation(self, game_parts):
        reader, graph = game_parts
        sess = StreamSession(reader, graph, Channel(1e6))
        with pytest.raises(ValueError):
            sess.play_path([])
        with pytest.raises(ValueError):
            sess.play_path([("classroom", -1.0)])

    def test_prefetch_depth_validation(self, game_parts):
        reader, graph = game_parts
        with pytest.raises(ValueError):
            StreamSession(reader, graph, Channel(1e6), prefetch_depth=0)


class TestDevices:
    def test_factory(self):
        assert isinstance(make_device("pda"), PDA)
        assert isinstance(make_device("remote"), RemoteControl)
        with pytest.raises(ValueError):
            make_device("neural-link")

    def test_pointer_devices_single_event(self, classroom_game):
        rng = np.random.default_rng(0)
        sc = classroom_game.scenarios["classroom"]
        for cls in (KeyboardMouse, Tablet):
            plan = cls().activate(sc, "computer", rng)
            assert len(plan.events) == 1
            assert isinstance(plan.events[0], MouseClick)
            x, y = sc.get_object("computer").hotspot.center()
            assert plan.events[0].x == x and plan.events[0].y == y

    def test_pda_retries_on_miss(self, classroom_game):
        sc = classroom_game.scenarios["classroom"]
        # Find a seed where the first tap misses.
        for seed in range(50):
            rng = np.random.default_rng(seed)
            plan = PDA().activate(sc, "computer", rng)
            if len(plan.events) > 1:
                assert plan.seconds > PDA.seconds_per_tap
                break
        else:
            pytest.fail("no PDA miss in 50 seeds (miss_rate broken?)")

    def test_remote_cost_grows_with_focus_distance(self, classroom_game):
        rng = np.random.default_rng(0)
        sc = classroom_game.scenarios["classroom"]
        remote = RemoteControl()
        order = [o.object_id for o in sc.objects]
        first = remote.activate(sc, order[0], rng)
        last = remote.activate(sc, order[-1], rng)
        assert last.seconds > first.seconds
        assert len(last.events) == len(order)  # n-1 arrows + OK

    def test_remote_unknown_object(self, classroom_game):
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError):
            RemoteControl().activate(
                classroom_game.scenarios["classroom"], "ghost", rng
            )

    def test_drag_plans_end_with_drag(self, classroom_game):
        rng = np.random.default_rng(1)
        sc = classroom_game.scenarios["market"]
        for name in ("keyboard_mouse", "tablet", "pda", "remote"):
            plan = make_device(name).drag_to_inventory(sc, "ram", 110.0, rng)
            assert isinstance(plan.events[-1], MouseDrag)
            assert plan.seconds > 0


class TestProgressiveStreaming:
    PATH = [("classroom", 10.0), ("market", 10.0), ("classroom", 5.0)]

    def test_progressive_starts_earlier(self, game_parts):
        reader, graph = game_parts
        slow = Channel(150_000, 0.05)
        full = StreamSession(reader, graph, Channel(150_000, 0.05),
                             policy="none").play_path(self.PATH)
        prog = StreamSession(reader, graph, slow, policy="none",
                             progressive=True).play_path(self.PATH)
        assert prog.mean_startup_delay <= full.mean_startup_delay + 1e-9

    def test_slow_channel_rebuffers(self, game_parts):
        reader, graph = game_parts
        # Channel far below the content bitrate: rebuffering is forced.
        bitrate = reader.index[0].byte_size / reader.segment_duration_seconds(0)
        session = StreamSession(reader, graph, Channel(bitrate / 4, 0.01),
                                policy="none", progressive=True)
        stats = session.play_path([("classroom", 5.0)])
        assert stats.total_rebuffer_seconds > 0

    def test_fast_channel_no_rebuffer(self, game_parts):
        reader, graph = game_parts
        bitrate = reader.index[0].byte_size / reader.segment_duration_seconds(0)
        session = StreamSession(reader, graph, Channel(bitrate * 20, 0.01),
                                policy="none", progressive=True)
        stats = session.play_path(self.PATH)
        assert stats.total_rebuffer_seconds == pytest.approx(0.0, abs=1e-9)

    def test_conservation_playback_ends_at_download_end(self, game_parts):
        """Fluid-model identity: when rebuffering occurs, playback ends
        exactly when the download ends — streaming cannot outrun bytes."""
        reader, graph = game_parts
        ch = Channel(200_000, 0.02)
        session = StreamSession(reader, graph, ch, policy="none",
                                progressive=True)
        stats = session.play_path([("classroom", 1.0)])
        switch = stats.switches[0]
        finish = ch.log[0].finished_at
        duration = reader.segment_duration_seconds(0)
        playback_end = switch.playable_at + switch.rebuffer_seconds + duration
        assert playback_end == pytest.approx(max(finish,
                                                 switch.playable_at + duration))

    def test_buffer_validation(self, game_parts):
        reader, graph = game_parts
        with pytest.raises(ValueError):
            StreamSession(reader, graph, Channel(1e6), progressive=True,
                          startup_buffer_s=0)

    def test_resident_segment_instant(self, game_parts):
        reader, graph = game_parts
        session = StreamSession(reader, graph, Channel(1e6, 0.01),
                                policy="none", progressive=True)
        stats = session.play_path(self.PATH)
        # Third visit re-plays the classroom segment: already resident.
        assert stats.switches[2].startup_delay == pytest.approx(0.0)
        assert stats.switches[2].rebuffer_seconds == 0.0
