"""Unit + property tests for repro.video.codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import Frame, FrameSize
from repro.video.codec import (
    CodecError,
    DeltaCodec,
    QuantCodec,
    available_codecs,
    get_codec,
    mse,
    psnr,
    rle_decode_bytes,
    rle_encode_bytes,
)

SIZE = FrameSize(16, 12)


def _random_frames(n, seed=0, size=SIZE):
    rng = np.random.default_rng(seed)
    return [
        Frame(rng.integers(0, 256, size=size.shape, dtype=np.uint8))
        for _ in range(n)
    ]


class TestRleKernel:
    def test_roundtrip_simple(self):
        buf = np.array([1, 1, 1, 2, 2, 3], dtype=np.uint8)
        assert (rle_decode_bytes(rle_encode_bytes(buf)) == buf).all()

    def test_empty(self):
        buf = np.array([], dtype=np.uint8)
        out = rle_decode_bytes(rle_encode_bytes(buf))
        assert out.size == 0

    def test_long_run_split(self):
        buf = np.zeros(200_000, dtype=np.uint8)  # forces u16 run splitting
        out = rle_decode_bytes(rle_encode_bytes(buf))
        assert out.size == buf.size and (out == 0).all()

    def test_flat_compresses(self):
        buf = np.zeros(10_000, dtype=np.uint8)
        assert len(rle_encode_bytes(buf)) < 100

    def test_decode_rejects_garbage(self):
        with pytest.raises(CodecError):
            rle_decode_bytes(b"XX\x00\x00\x00\x00")

    def test_decode_rejects_length_mismatch(self):
        payload = rle_encode_bytes(np.array([1, 2, 3], dtype=np.uint8))
        tampered = payload[:2] + (99).to_bytes(4, "little") + payload[6:]
        with pytest.raises(CodecError):
            rle_decode_bytes(tampered)

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        buf = np.asarray(values, dtype=np.uint8)
        assert (rle_decode_bytes(rle_encode_bytes(buf)) == buf).all()


class TestRegistry:
    def test_available(self):
        assert set(available_codecs()) == {"raw", "rle", "delta", "quant"}

    def test_get_unknown(self):
        with pytest.raises(CodecError):
            get_codec("h264")

    def test_get_with_params(self):
        c = get_codec("quant", bits=3)
        assert isinstance(c, QuantCodec) and c.bits == 3


@pytest.mark.parametrize("name", ["raw", "rle", "delta"])
class TestLosslessCodecs:
    def test_roundtrip_random(self, name):
        codec = get_codec(name)
        frames = _random_frames(6, seed=1)
        payloads = codec.encode_all(frames)
        decoded = codec.decode_all(payloads, SIZE)
        assert decoded == frames

    def test_roundtrip_flat(self, name):
        codec = get_codec(name)
        frames = [Frame.blank(SIZE, (i * 10, 0, 0)) for i in range(4)]
        assert codec.decode_all(codec.encode_all(frames), SIZE) == frames

    def test_not_marked_lossy(self, name):
        assert get_codec(name).lossy is False


class TestDeltaCodec:
    def test_keyframe_interval(self):
        codec = DeltaCodec(intra_period=3)
        frames = _random_frames(7, seed=2)
        payloads = codec.encode_all(frames)
        tags = [p[:1] for p in payloads]
        assert tags == [b"K", b"D", b"D", b"K", b"D", b"D", b"K"]

    def test_reset_between_segments(self):
        codec = DeltaCodec(intra_period=100)
        a = _random_frames(3, seed=3)
        b = _random_frames(3, seed=4)
        pa = codec.encode_all(a)
        pb = codec.encode_all(b)  # encode_all resets
        assert pb[0][:1] == b"K"
        assert codec.decode_all(pb, SIZE) == b

    def test_delta_before_keyframe_rejected(self):
        codec = DeltaCodec()
        frames = _random_frames(2, seed=5)
        payloads = codec.encode_all(frames)
        fresh = DeltaCodec()
        with pytest.raises(CodecError):
            fresh.decode(payloads[1], SIZE)

    def test_static_scene_compresses_well(self):
        (frame,) = _random_frames(1, seed=42)  # incompressible keyframe
        codec = DeltaCodec(intra_period=10)
        payloads = codec.encode_all([frame] * 8)
        # Delta payloads of identical frames are all-zero planes -> tiny.
        assert sum(len(p) for p in payloads[1:]) < len(payloads[0])

    def test_invalid_intra_period(self):
        with pytest.raises(ValueError):
            DeltaCodec(intra_period=0)


class TestQuantCodec:
    def test_is_lossy_but_bounded(self):
        codec = QuantCodec(bits=4)
        (frame,) = _random_frames(1, seed=6)
        (payload,) = codec.encode_all([frame])
        (out,) = codec.decode_all([payload], SIZE)
        err = np.abs(out.data.astype(int) - frame.data.astype(int)).max()
        assert err <= (1 << (8 - 4))  # within one quantisation step

    def test_eight_bits_lossless(self):
        codec = QuantCodec(bits=8)
        (frame,) = _random_frames(1, seed=7)
        (out,) = codec.decode_all(codec.encode_all([frame]), SIZE)
        assert out == frame

    def test_fewer_bits_smaller_payload_on_gradient(self):
        frame = Frame.from_gradient(SIZE, (0, 0, 0), (255, 255, 255))
        sizes = {}
        for bits in (2, 6):
            codec = QuantCodec(bits=bits)
            sizes[bits] = len(codec.encode_all([frame])[0])
        assert sizes[2] < sizes[6]

    def test_psnr_monotone_in_bits(self):
        (frame,) = _random_frames(1, seed=8)
        values = []
        for bits in (2, 4, 6):
            codec = QuantCodec(bits=bits)
            (out,) = codec.decode_all(codec.encode_all([frame]), SIZE)
            values.append(psnr(out, frame))
        assert values[0] < values[1] < values[2]

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantCodec(bits=0)
        with pytest.raises(ValueError):
            QuantCodec(bits=9)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        (f,) = _random_frames(1, seed=9)
        assert mse(f, f) == 0.0

    def test_psnr_inf_for_identical(self):
        (f,) = _random_frames(1, seed=10)
        assert psnr(f, f) == float("inf")

    def test_mse_known_value(self):
        a = Frame.blank(SIZE, (0, 0, 0))
        b = Frame.blank(SIZE, (10, 10, 10))
        assert mse(a, b) == pytest.approx(100.0)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            mse(Frame.blank(SIZE), Frame.blank(FrameSize(8, 8)))


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_all_lossless_codecs_roundtrip_property(seed):
    """Property: every lossless codec inverts exactly on arbitrary frames."""
    frames = _random_frames(3, seed=seed, size=FrameSize(9, 7))
    for name in ("raw", "rle", "delta"):
        codec = get_codec(name)
        assert codec.decode_all(codec.encode_all(frames), FrameSize(9, 7)) == frames
