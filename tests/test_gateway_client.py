"""Client-side tests: backoff schedule, retry loop, reconnect-resume."""

import asyncio

import pytest

from repro import obs
from repro.gateway import (
    GatewayClient,
    GatewayClosed,
    GatewayServer,
    GatewayThread,
    backoff_delays,
)
from repro.serve import ServeConfig, SessionManager
from repro.students import cohort_scripts


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=29)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


def _value(name, **labels):
    metric = obs.get_registry().get(name)
    assert metric is not None, f"metric {name} not registered"
    return metric.value(**labels)


def _slow_gateway(game):
    """Ticks slow enough that sessions outlive a client reconnect."""
    manager = SessionManager(ServeConfig(
        n_shards=2, tick_interval_s=0.05, max_steps_per_tick=1
    ))
    return GatewayServer(manager, game)


class TestBackoffSchedule:
    def test_bounded_exponential_values(self):
        assert backoff_delays(0) == []
        assert backoff_delays(4, base=0.05, factor=2.0, max_delay=2.0) == [
            0.05, 0.1, 0.2, 0.4,
        ]
        # the cap flattens the tail
        delays = backoff_delays(8, base=0.05, factor=2.0, max_delay=0.3)
        assert delays[:3] == [0.05, 0.1, 0.2]
        assert all(d == 0.3 for d in delays[3:])

    def test_factor_one_is_constant(self):
        assert backoff_delays(3, base=0.1, factor=1.0, max_delay=1.0) == [
            0.1, 0.1, 0.1,
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            backoff_delays(-1)
        with pytest.raises(ValueError):
            backoff_delays(2, base=0.0)
        with pytest.raises(ValueError):
            backoff_delays(2, factor=0.5)
        with pytest.raises(ValueError):
            backoff_delays(2, base=0.5, max_delay=0.1)


class TestRetryLoop:
    def test_exhausted_retries_follow_the_schedule(self, live):
        """Fake clock: every sleep the retry loop takes is recorded."""
        attempts = []
        slept = []

        async def failing_connector(host, port):
            attempts.append((host, port))
            raise ConnectionRefusedError("nobody home")

        async def fake_sleep(delay):
            slept.append(delay)

        client = GatewayClient(
            "gw.test", 4242,
            retries=3, backoff_base_s=0.05, backoff_factor=2.0,
            backoff_max_s=2.0,
            connector=failing_connector, sleep=fake_sleep,
        )
        before = _value("repro_gateway_client_retries_total")
        with pytest.raises(GatewayClosed):
            asyncio.run(client.connect())
        assert len(attempts) == 4  # initial + 3 retries
        assert slept == backoff_delays(3, 0.05, 2.0, 2.0)
        assert _value("repro_gateway_client_retries_total") == before + 3

    def test_connect_succeeds_after_transient_failures(
        self, classroom_game, scripts, live
    ):
        script = scripts[0]
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            failures = [ConnectionRefusedError("boot"), OSError("flap")]
            slept = []

            async def flaky_connector(host, port):
                if failures:
                    raise failures.pop(0)
                return await asyncio.open_connection(host, port)

            async def fake_sleep(delay):
                slept.append(delay)

            client = GatewayClient(
                handle.host, handle.port,
                retries=4, backoff_base_s=0.05,
                connector=flaky_connector, sleep=fake_sleep,
            )

            async def drive():
                await client.connect()
                try:
                    await client.submit("retry-1", script.ops, dt=script.dt)
                    return await client.wait_end("retry-1", timeout=30.0)
                finally:
                    await client.close()

            end = asyncio.run(drive())
        assert not end["failed"]
        assert slept == backoff_delays(4, 0.05, 2.0, 2.0)[:2]


class TestReconnectResume:
    def test_reconnect_resumes_live_session(
        self, classroom_game, scripts, live
    ):
        script = scripts[1]
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                client = GatewayClient(handle.host, handle.port)
                await client.connect()
                await client.submit("res-1", script.ops, dt=script.dt)
                # drop the TCP connection; the session keeps stepping
                statuses = await client.reconnect()
                assert statuses["res-1"] == "live"
                end = await client.wait_end("res-1", timeout=30.0)
                await client.close()
                return end

            end = asyncio.run(drive())
        assert not end["failed"]
        assert end["steps"] == len(script.ops)

    def test_second_client_resumes_by_player_id(
        self, classroom_game, scripts, live
    ):
        script = scripts[2]
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                first = GatewayClient(handle.host, handle.port,
                                      client_name="first")
                await first.connect()
                await first.submit("res-2", script.ops, dt=script.dt)
                await first.close()

                second = GatewayClient(handle.host, handle.port,
                                       client_name="second")
                statuses = await second.connect(resume=["res-2"])
                # live now, or done if the handoff out-raced the script
                assert statuses["res-2"] in ("live", "done")
                end = await second.wait_end("res-2", timeout=30.0)
                await second.close()
                return end

            end = asyncio.run(drive())
        assert not end["failed"]

    def test_resume_unknown_player_reports_unknown(
        self, classroom_game, live
    ):
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                async with GatewayClient(handle.host, handle.port) as client:
                    statuses = await client.connect(resume=["ghost"])
                    mid = await client.resume("also-a-ghost")
                    return statuses, mid

            statuses, mid = asyncio.run(drive())
        assert statuses.get("ghost", "unknown") == "unknown"
        assert mid == "unknown"


class TestHeartbeat:
    def test_heartbeat_records_round_trips(self, classroom_game, live):
        metric = obs.get_registry().get("repro_gateway_rtt_seconds")
        before = sum(s.count for _k, s in metric.series())
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                client = GatewayClient(
                    handle.host, handle.port,
                    heartbeat_s=0.05, idle_timeout_s=5.0,
                )
                await client.connect()
                await asyncio.sleep(0.4)
                await client.close()

            asyncio.run(drive())
        after = sum(s.count for _k, s in metric.series())
        assert after > before, "heartbeat loop recorded no PING round trips"


class TestHeartbeatLifecycle:
    """The heartbeat task must not outlive its usefulness: a loop that
    died with its connection is a corpse, and ``connect()`` must clear
    it so the next connection gets a fresh one (regression: a dead task
    used to satisfy the ``is None`` check forever, leaving every later
    connection unheartbeated)."""

    def test_dead_heartbeat_task_is_replaced_on_reconnect(
        self, classroom_game, live
    ):
        from repro.gateway.protocol import HELLO, encode_frame

        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                async def dark_server(reader, writer):
                    # answer the handshake, then never speak again
                    await reader.read(65536)
                    writer.write(
                        encode_frame(HELLO, {"seq": 1, "resumed": {}})
                    )
                    await writer.drain()
                    await reader.read(65536)

                dark = await asyncio.start_server(
                    dark_server, "127.0.0.1", 0
                )
                dark_port = dark.sockets[0].getsockname()[1]
                net = {"dark": True, "down": False}

                async def connector(host, port):
                    if net["down"]:
                        raise ConnectionRefusedError("network down")
                    target = dark_port if net["dark"] else handle.port
                    return await asyncio.open_connection("127.0.0.1", target)

                client = GatewayClient(
                    handle.host, handle.port,
                    heartbeat_s=0.03, idle_timeout_s=0.05,
                    retries=0, auto_reconnect=True, connector=connector,
                )
                await client.connect()
                first = client._heartbeat_task
                assert first is not None and not first.done()
                # the server goes silent and the network dies with it:
                # the loop detects idleness, fails its own reconnect,
                # and returns — a natural death, no cancellation
                net["down"] = True
                await asyncio.wait_for(first, timeout=10.0)
                assert client._heartbeat_task is first  # the corpse stays
                # the network heals, pointing at the real gateway now
                net.update(down=False, dark=False)
                await client.reconnect()
                second = client._heartbeat_task
                assert second is not None
                assert second is not first, (
                    "reconnect left the dead heartbeat task installed"
                )
                assert not second.done()
                rtt = await client.ping()
                assert rtt >= 0.0
                await client.close()
                dark.close()
                await dark.wait_closed()

            asyncio.run(drive())

    def test_live_heartbeat_task_is_not_duplicated(
        self, classroom_game, live
    ):
        with GatewayThread(_slow_gateway(classroom_game)) as handle:
            async def drive():
                client = GatewayClient(
                    handle.host, handle.port,
                    heartbeat_s=0.05, idle_timeout_s=5.0,
                )
                await client.connect()
                first = client._heartbeat_task
                await client.reconnect()
                assert client._heartbeat_task is first
                assert not first.done()
                await client.close()

            asyncio.run(drive())
