"""Integration tests for the game engine (the §4.3 runtime)."""

import pytest

from repro.events import (
    AwardBonus,
    EndGame,
    EventBinding,
    EventTable,
    GiveItem,
    OpenWeb,
    SetObjectVisible,
    ShowText,
    SwitchScenario,
    Trigger,
)
from repro.graph import Scenario
from repro.objects import ImageObject, ItemObject, NPCObject, RectHotspot
from repro.runtime import (
    Dialogue,
    EngineError,
    GameEngine,
    KeyPress,
    MouseClick,
    MouseDrag,
    SessionRecorder,
)
from repro.video import SimulatedClock


def _engine(extra_bindings=(), dialogues=None, timers=()):
    classroom = Scenario("classroom", "Classroom", 0)
    market = Scenario("market", "Market", 1)
    classroom.add_object(ImageObject(
        object_id="computer", name="Computer", hotspot=RectHotspot(30, 20, 20, 20),
        description="It will not boot.", properties={"state": "broken"},
    ))
    classroom.add_object(NPCObject(
        object_id="teacher", name="Teacher", dialogue_id="d",
        hotspot=RectHotspot(5, 10, 10, 20),
    ))
    market.add_object(ItemObject(
        object_id="ram", name="RAM", hotspot=RectHotspot(40, 40, 8, 8),
    ))
    table = EventTable()
    table.add(EventBinding(binding_id="use-ram", scenario_id="classroom",
                           trigger=Trigger.USE_ITEM, object_id="computer",
                           item_id="ram", once=True,
                           actions=[AwardBonus(points=20),
                                    ShowText(text="Fixed!"),
                                    EndGame(outcome="won")]))
    for b in extra_bindings:
        table.add(b)
    for bid, sec, acts in timers:
        table.add(EventBinding(binding_id=bid, scenario_id="classroom",
                               trigger=Trigger.TIMER, timer_seconds=sec,
                               actions=acts))
    dlg = dialogues or {"d": Dialogue.linear("d", ["Fix the computer!"])}
    clock = SimulatedClock()
    eng = GameEngine(
        {"classroom": classroom, "market": market}, table, "classroom",
        dialogues=dlg, clock=clock,
    )
    return eng, clock


class TestLifecycle:
    def test_must_start_first(self):
        eng, _ = _engine()
        with pytest.raises(EngineError):
            eng.handle_input(MouseClick(1, 1))
        with pytest.raises(EngineError):
            eng.tick(0.1)

    def test_double_start_rejected(self):
        eng, _ = _engine()
        eng.start()
        with pytest.raises(EngineError):
            eng.start()

    def test_start_fires_enter_and_injects_props(self):
        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="welcome", scenario_id="classroom", trigger=Trigger.ENTER,
            actions=[ShowText(text="Welcome!")])])
        eng.start()
        assert eng.state.popups[-1].content == "Welcome!"
        assert eng.state.get_prop("computer", "state") == "broken"

    def test_videoless_render(self):
        eng, _ = _engine()
        eng.start()
        frame = eng.render()
        assert frame.size == eng.frame_size


class TestInteractions:
    def test_unbound_click_shows_description(self):
        eng, _ = _engine()
        eng.start()
        eng.handle_input(MouseClick(35, 25))
        assert eng.state.popups[-1].content == "It will not boot."

    def test_examine_fallback_text(self):
        eng, _ = _engine()
        eng.start()
        eng.handle_input(MouseClick(8, 15, button="right"))  # teacher, no desc
        assert "Teacher" in eng.state.popups[-1].content

    def test_take_hides_and_fills_backpack(self):
        eng, _ = _engine()
        eng.start()
        eng.fire(Trigger.ENTER)  # noop; ensure fire() public path works
        eng._execute([SwitchScenario(target="market")], source="test")
        eng.handle_input(MouseDrag(42, 42, 5, eng.layout.inv_y + 2))
        assert eng.state.inventory.has("ram")
        assert eng.state.visibility["ram"] is False

    def test_full_quest_to_win(self):
        eng, _ = _engine()
        eng.start()
        eng._execute([SwitchScenario(target="market")], source="test")
        eng.handle_input(MouseDrag(42, 42, 5, eng.layout.inv_y + 2))
        eng._execute([SwitchScenario(target="classroom")], source="test")
        eng.handle_input(MouseClick(eng.layout.inv_x + 2, eng.layout.inv_y + 2))
        assert eng.state.inventory.selected == "ram"
        eng.handle_input(MouseClick(35, 25))
        assert eng.state.outcome == "won"
        assert eng.state.score == 20

    def test_use_item_without_binding_feedback(self):
        eng, _ = _engine()
        eng.start()
        eng.state.inventory.add("rock")
        eng.state.inventory.select("rock")
        eng.handle_input(MouseClick(35, 25))
        assert eng.state.popups[-1].content == "Nothing happens."
        assert eng.state.inventory.selected is None

    def test_inputs_ignored_after_end(self):
        eng, _ = _engine()
        eng.start()
        eng.state.end("won")
        g = eng.handle_input(MouseClick(35, 25))
        assert g.kind == "none"

    def test_avatar_moves_and_clamps(self):
        eng, _ = _engine()
        eng.start()
        for _ in range(100):
            eng.handle_input(KeyPress("left"))
        assert eng.state.avatar_xy[0] == 0.0

    def test_switch_to_unknown_scenario_raises(self):
        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="bad", scenario_id="classroom", trigger=Trigger.CLICK,
            object_id="computer", actions=[SwitchScenario(target="mars")])])
        eng.start()
        with pytest.raises(EngineError):
            eng.handle_input(MouseClick(35, 25))


class TestDialogueFlow:
    def test_talk_opens_dialogue(self):
        eng, _ = _engine()
        eng.start()
        eng.handle_input(MouseClick(8, 15))
        assert eng.dialogue_session is not None
        assert eng.state.popups[-1].kind == "dialogue"

    def test_dismiss_terminal_line_closes(self):
        eng, _ = _engine()
        eng.start()
        eng.handle_input(MouseClick(8, 15))
        eng.handle_input(MouseClick(1, 1))  # dismiss single-line dialogue
        assert eng.dialogue_session is None

    def test_choice_actions_executed(self):
        from repro.runtime import DialogueChoice, DialogueNode

        dlg = Dialogue("d", [
            DialogueNode("a", "Take this key.", [
                DialogueChoice("Thanks", None, actions=[GiveItem(item_id="key")]),
            ]),
        ], root="a")
        eng, _ = _engine(dialogues={"d": dlg})
        eng.start()
        eng.handle_input(MouseClick(8, 15))
        eng.choose_dialogue(0)
        assert eng.state.inventory.has("key")
        assert eng.dialogue_session is None

    def test_choose_without_dialogue_raises(self):
        eng, _ = _engine()
        eng.start()
        with pytest.raises(EngineError):
            eng.choose_dialogue(0)


class TestTimersAndActions:
    def test_timer_fires_after_dwell(self):
        eng, clock = _engine(timers=[("hint", 5.0, [ShowText(text="Hint!")])])
        eng.start()
        eng.tick(4.0)
        assert not any(p.content == "Hint!" for p in eng.state.popups)
        eng.tick(1.5)
        assert any(p.content == "Hint!" for p in eng.state.popups)

    def test_timer_fires_once_per_visit(self):
        eng, _ = _engine(timers=[("hint", 1.0, [ShowText(text="Hint!")])])
        eng.start()
        eng.tick(2.0)
        eng.tick(2.0)
        hints = [p for p in eng.state.popups if p.content == "Hint!"]
        assert len(hints) == 1

    def test_openweb_recorded(self):
        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="www", scenario_id="classroom", trigger=Trigger.CLICK,
            object_id="computer", actions=[OpenWeb(url="https://docs.example/x")])])
        eng.start()
        eng.handle_input(MouseClick(35, 25))
        assert eng.state.web_visits == ["https://docs.example/x"]

    def test_set_visible_reveals_object(self):
        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="reveal", scenario_id="classroom", trigger=Trigger.ENTER,
            actions=[SetObjectVisible(object_id="computer", visible=False)])])
        eng.start()
        assert eng.state.object_visible("computer", True) is False

    def test_once_binding_does_not_refire(self):
        eng, _ = _engine()
        eng.start()
        eng.state.inventory.add("ram")
        eng.state.inventory.add("ram")
        eng.fire(Trigger.USE_ITEM, "computer", "ram")
        assert eng.state.outcome == "won"
        # Once fired, the binding is excluded even in a fresh match.
        assert eng.events.match(
            "classroom", Trigger.USE_ITEM, "computer", "ram",
            exclude_ids=eng.state.fired_once,
        ) == []


class TestSessionRecording:
    def test_recorder_aggregates(self):
        eng, _ = _engine()
        eng.start()
        rec = SessionRecorder(eng.bus, "p1")
        eng.handle_input(MouseClick(35, 25))
        eng.handle_input(MouseClick(1, 1))
        log = rec.finish(10.0, None, 0, 1)
        assert log.interaction_count == 2
        assert log.gesture_counts["click"] == 1
        assert log.gesture_counts["dismiss"] == 1
        assert log.interactions_per_minute == pytest.approx(12.0)

    def test_recorder_without_notices(self):
        eng, _ = _engine()
        eng.start()
        rec = SessionRecorder(eng.bus, "p1", keep_notices=False)
        eng.handle_input(MouseClick(35, 25))
        log = rec.finish(1.0, None, 0, 1)
        assert log.notices == []
        assert log.topic_counts["interaction"] == 1

    def test_finish_idempotent(self):
        eng, _ = _engine()
        eng.start()
        rec = SessionRecorder(eng.bus, "p1")
        a = rec.finish(1.0, "won", 5, 1)
        b = rec.finish(99.0, "lost", 0, 9)
        assert a is b and a.duration == 1.0


class TestApproachTrigger:
    def _engine_with_approach(self):
        eng, clock = _engine(extra_bindings=[EventBinding(
            binding_id="near-computer", scenario_id="classroom",
            trigger=Trigger.APPROACH, object_id="computer",
            actions=[ShowText(text="You stand before the computer.")])])
        eng.start()
        return eng

    def _walk_to(self, eng, tx, ty):
        # Arrow keys move 8px per press; walk the avatar to (tx, ty).
        for _ in range(60):
            ax, ay = eng.state.avatar_xy
            if abs(ax - tx) <= 4 and abs(ay - ty) <= 4:
                break
            if ax < tx - 4:
                eng.handle_input(KeyPress("right"))
            elif ax > tx + 4:
                eng.handle_input(KeyPress("left"))
            elif ay < ty - 4:
                eng.handle_input(KeyPress("down"))
            else:
                eng.handle_input(KeyPress("up"))

    def test_walking_into_hotspot_fires(self):
        eng = self._engine_with_approach()
        self._walk_to(eng, 40, 30)  # the computer's hotspot
        assert any(p.content == "You stand before the computer."
                   for p in eng.state.popups)
        assert "computer" in eng.state.approached

    def test_fires_once_per_visit(self):
        eng = self._engine_with_approach()
        self._walk_to(eng, 40, 30)
        n = len([p for p in eng.state.popups
                 if p.content == "You stand before the computer."])
        # Walk away and back: still the same visit, no re-fire.
        eng.state.popups.clear()
        self._walk_to(eng, 5, 5)
        self._walk_to(eng, 40, 30)
        assert not eng.state.popups
        # Leave the scenario and return: re-armed.
        eng._execute([SwitchScenario(target="market")], source="t")
        eng._execute([SwitchScenario(target="classroom")], source="t")
        assert eng.state.approached == set()

    def test_invisible_objects_not_approachable(self):
        eng = self._engine_with_approach()
        eng.state.visibility["computer"] = False
        self._walk_to(eng, 40, 30)
        assert "computer" not in eng.state.approached

    def test_solver_uses_approach_to_win(self):
        """A game winnable only by walking somewhere is still provable."""
        from repro.core import GameProject, ObjectEditor, ScenarioEditor, solve
        from repro.core.templates import scene_footage
        from repro.objects import RectHotspot
        from repro.video import FrameSize

        project = GameProject("Walk")
        scenes = ScenarioEditor(project)
        objects = ObjectEditor(project)
        scenes.import_footage("c", scene_footage(FrameSize(48, 36), 1, duration=4))
        scenes.commit_whole("c")
        scenes.create_scenario("room", "Room", "c")
        objects.place_image("room", "door", "Door", RectHotspot(30, 10, 10, 20),
                            description="the way out")
        objects.bind("room", Trigger.APPROACH, object_id="door",
                     actions=[EndGame(outcome="won")])
        result = solve(project.compile())
        assert result.winnable
        assert result.winning_script[0].kind == "approach"


class TestRemainingActionPaths:
    def test_popup_image_action(self):
        from repro.events import PopupImage

        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="pic", scenario_id="classroom", trigger=Trigger.CLICK,
            object_id="computer", actions=[PopupImage(object_id="computer")])])
        eng.start()
        eng.handle_input(MouseClick(35, 25))
        assert eng.state.popups[-1].kind == "image"
        assert eng.state.popups[-1].content == "computer"

    def test_start_dialogue_action(self):
        from repro.events import StartDialogue

        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="auto-talk", scenario_id="classroom",
            trigger=Trigger.ENTER,
            actions=[StartDialogue(dialogue_id="d")])])
        eng.start()
        assert eng.dialogue_session is not None
        assert eng.state.popups[-1].kind == "dialogue"

    def test_start_dialogue_unknown_id_raises(self):
        from repro.events import StartDialogue

        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="bad-talk", scenario_id="classroom",
            trigger=Trigger.CLICK, object_id="computer",
            actions=[StartDialogue(dialogue_id="ghost")])])
        eng.start()
        with pytest.raises(EngineError):
            eng.handle_input(MouseClick(35, 25))

    def test_take_item_absent_is_noop(self):
        from repro.events import TakeItem

        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="steal", scenario_id="classroom", trigger=Trigger.CLICK,
            object_id="computer", actions=[TakeItem(item_id="ghost-item")])])
        eng.start()
        eng.handle_input(MouseClick(35, 25))  # no raise, no change
        assert not eng.state.inventory.has("ghost-item")

    def test_give_item_full_backpack_feedback(self):
        eng, _ = _engine(extra_bindings=[EventBinding(
            binding_id="gift", scenario_id="classroom", trigger=Trigger.CLICK,
            object_id="computer", actions=[GiveItem(item_id="prize")])])
        # Rebuild with capacity 1 and pre-fill it.
        eng.state.inventory.add("junk")  # before start: fine, capacity 12
        eng2 = GameEngine(eng.scenarios, eng.events, "classroom",
                          dialogues=eng.dialogues, inventory_capacity=1)
        eng2.start()
        eng2.state.inventory.add("junk")
        eng2.handle_input(MouseClick(35, 25))
        assert eng2.state.popups[-1].content == "The backpack is full."
        assert not eng2.state.inventory.has("prize")

    def test_take_gesture_full_backpack_feedback(self):
        eng, _ = _engine()
        eng2 = GameEngine(eng.scenarios, eng.events, "classroom",
                          dialogues=eng.dialogues, inventory_capacity=1)
        eng2.start()
        eng2.state.inventory.add("junk")
        eng2._execute([SwitchScenario(target="market")], source="t")
        eng2.handle_input(MouseDrag(42, 42, 5, eng2.layout.inv_y + 2))
        assert eng2.state.popups[-1].content == "The backpack is full."
        # The object stays in the scene (not hidden).
        assert eng2.state.object_visible("ram", True)

    def test_move_gesture_repositions_draggable(self):
        eng, _ = _engine()
        eng.start()
        eng._execute([SwitchScenario(target="market")], source="t")
        eng.handle_input(MouseDrag(42, 42, 10, 10))
        obj = eng.scenarios["market"].get_object("ram")
        assert obj.hotspot.bounding_box()[:2] == (10, 10)

    def test_cutscene_on_finish_autoadvance(self, classroom_game):
        """A non-looping scenario auto-advances when its video ends."""
        from repro.core import GameWizard
        from repro.core.templates import scene_footage
        from repro.video import FrameSize

        size = FrameSize(48, 36)
        wiz = (
            GameWizard("Cutscene")
            .scene("intro", "Intro", scene_footage(size, 1, duration=4))
            .scene("main", "Main", scene_footage(size, 2, duration=4))
        )
        intro = wiz.project.scenarios["intro"]
        intro.loop = False
        intro.on_finish = "main"
        game = wiz.build(require_valid=False)
        eng = game.new_engine()  # video needed to detect segment end
        eng.start()
        # 4 frames at 24 fps = 1/6 s; tick past it.
        for _ in range(8):
            eng.tick(0.1)
        assert eng.state.current_scenario == "main"
