"""Cross-module property tests: structural invariants under random ops.

These complement the per-module property tests with invariants that span
operations: timelines conserve frames under arbitrary edit sequences,
containers round-trip arbitrary segment structures, event tables
round-trip through serialisation, and wizard-built quest games are
always winnable.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import fetch_quest_game, solve
from repro.events import (
    AwardBonus,
    EventBinding,
    EventTable,
    SetFlag,
    ShowText,
    SwitchScenario,
    Trigger,
)
from repro.video import (
    Frame,
    FrameSize,
    SegmentError,
    Timeline,
    VideoReader,
    VideoSegment,
    VideoWriter,
)

SIZE = FrameSize(12, 10)


def _seg(name, n):
    return VideoSegment(name=name, frames=[Frame.blank(SIZE)] * n)


# ----------------------------------------------------------------------
# Timeline: frame conservation under random edit scripts
# ----------------------------------------------------------------------

@st.composite
def _edit_scripts(draw):
    return draw(st.lists(
        st.tuples(st.sampled_from(["merge", "split", "move", "rename"]),
                  st.integers(0, 10_000)),
        max_size=25,
    ))


@given(script=_edit_scripts(), sizes=st.lists(st.integers(2, 9), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_timeline_conserves_frames(script, sizes):
    """Property: merge/split/move/rename never create or destroy frames,
    and names stay unique."""
    tl = Timeline([_seg(f"s{i}", n) for i, n in enumerate(sizes)])
    total = tl.total_frames
    counter = 1000
    for op, r in script:
        names = tl.names
        if op == "merge" and len(names) >= 2:
            i = r % (len(names) - 1)
            try:
                tl.merge(names[i], names[i + 1], name=f"m{counter}")
            except SegmentError:
                pass
            counter += 1
        elif op == "split":
            name = names[r % len(names)]
            seg = tl.get(name)
            if seg.frame_count >= 2:
                tl.split(name, 1 + r % (seg.frame_count - 1))
        elif op == "move":
            tl.move(names[r % len(names)], r % len(names))
        elif op == "rename":
            tl.rename(names[r % len(names)], f"r{counter}")
            counter += 1
        assert tl.total_frames == total
        assert len(set(tl.names)) == len(tl.names)


# ----------------------------------------------------------------------
# Container: arbitrary segment structures round-trip
# ----------------------------------------------------------------------

@given(
    seg_sizes=st.lists(st.integers(1, 6), min_size=1, max_size=5),
    codec=st.sampled_from(["raw", "rle", "delta"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_container_roundtrip_property(seg_sizes, codec, seed):
    """Property: any segment structure round-trips losslessly through
    any lossless codec."""
    rng = np.random.default_rng(seed)
    segments = [
        [Frame(rng.integers(0, 256, SIZE.shape, dtype=np.uint8))
         for _ in range(n)]
        for n in seg_sizes
    ]
    writer = VideoWriter(SIZE, codec_name=codec)
    for seg in segments:
        writer.add_segment(seg)
    reader = VideoReader(writer.tobytes())
    assert reader.segment_count == len(segments)
    for i, seg in enumerate(segments):
        assert reader.decode_segment(i) == seg


# ----------------------------------------------------------------------
# Event table: serialisation round-trip preserves matching behaviour
# ----------------------------------------------------------------------

_action_strategies = st.sampled_from([
    ShowText(text="hello"),
    SwitchScenario(target="s2"),
    SetFlag(name="f", value=True),
    AwardBonus(points=3),
])


@st.composite
def _bindings(draw, idx):
    trigger = draw(st.sampled_from(
        [Trigger.CLICK, Trigger.EXAMINE, Trigger.ENTER, Trigger.USE_ITEM]
    ))
    kwargs = dict(
        binding_id=f"b{idx}",
        scenario_id=draw(st.sampled_from(["s1", "s2", "*"])),
        trigger=trigger,
        actions=[draw(_action_strategies)],
        once=draw(st.booleans()),
        priority=draw(st.integers(-3, 3)),
        condition=draw(st.sampled_from(["", "flag('f')", "score >= 1"])),
    )
    if trigger in Trigger.OBJECT_SCOPED:
        kwargs["object_id"] = draw(st.sampled_from(["o1", "o2"]))
    if trigger == Trigger.USE_ITEM:
        kwargs["item_id"] = draw(st.sampled_from(["i1", "i2"]))
    return EventBinding(**kwargs)


@st.composite
def _tables(draw):
    n = draw(st.integers(0, 8))
    return EventTable(draw(_bindings(i)) for i in range(n))


class _YesCtx:
    def has_item(self, i): return True
    def item_count(self, i): return 2
    def get_flag(self, n): return True
    def has_visited(self, s): return True
    def get_score(self): return 10
    def get_prop(self, o, k): return True


@given(table=_tables())
@settings(max_examples=50, deadline=None)
def test_event_table_serialisation_preserves_matching(table):
    """Property: a deserialised table matches identically to the original
    for every probe in a covering set."""
    restored = EventTable.from_list(table.to_list())
    ctx = _YesCtx()
    probes = [
        ("s1", Trigger.CLICK, "o1", None),
        ("s1", Trigger.CLICK, "o2", None),
        ("s2", Trigger.EXAMINE, "o1", None),
        ("s1", Trigger.ENTER, None, None),
        ("s2", Trigger.ENTER, None, None),
        ("s1", Trigger.USE_ITEM, "o1", "i1"),
        ("s2", Trigger.USE_ITEM, "o2", "i2"),
    ]
    for scenario, trigger, obj, item in probes:
        a = [b.binding_id for b in table.match(scenario, trigger, obj, item, ctx=ctx)]
        b = [b.binding_id for b in restored.match(scenario, trigger, obj, item, ctx=ctx)]
        assert a == b


# ----------------------------------------------------------------------
# Wizard-built quest games are always winnable
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_quests,seed", [(1, 10), (2, 20), (3, 30), (4, 40)])
def test_quest_template_always_winnable(n_quests, seed):
    """The template generator's contract: every parameterisation yields a
    provably winnable game whose solution needs all of: navigation, a
    take, and a use."""
    game = fetch_quest_game(n_quests=n_quests, size=SIZE_BIG, seed=seed).build()
    result = solve(game)
    assert result.winnable
    kinds = {m.kind for m in result.winning_script}
    assert {"click", "take", "use"} <= kinds


SIZE_BIG = FrameSize(64, 48)
