"""Tests for the sharded serving layer (repro.serve)."""

import threading
from time import perf_counter

import pytest

from repro import obs
from repro.serve import (
    LoadGenerator,
    ServeConfig,
    ServedSession,
    SessionManager,
    play_to_completion,
    session_factory_for_script,
    shard_for,
)
from repro.students import cohort_scripts


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 6, seed=11)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


def _value(name, **labels):
    metric = obs.get_registry().get(name)
    assert metric is not None, f"metric {name} not registered"
    return metric.value(**labels)


class TestShardPartition:
    def test_stable_and_in_range(self):
        for pid in ("alice", "bob", "carol", "魔法使い", ""):
            first = shard_for(pid, 8)
            assert 0 <= first < 8
            assert all(shard_for(pid, 8) == first for _ in range(5))

    def test_stable_across_managers(self):
        """The same player must own the same shard across restarts."""
        a = SessionManager(ServeConfig(n_shards=4))
        b = SessionManager(ServeConfig(n_shards=4))
        for k in range(100):
            pid = f"player-{k}"
            assert a.shard_for(pid) == b.shard_for(pid)
            assert a.shard_for(pid) == shard_for(pid, 4)

    def test_partition_is_balanced(self):
        counts = [0] * 4
        for k in range(1000):
            counts[shard_for(f"student-{k}", 4)] += 1
        # CRC32 over distinct ids: no shard should be starved or hot.
        assert min(counts) > 150
        assert max(counts) < 350

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_for("alice", 0)


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(n_shards=0)
        with pytest.raises(ValueError):
            ServeConfig(tick_interval_s=0)
        with pytest.raises(ValueError):
            ServeConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServeConfig(max_steps_per_tick=0)

    def test_capacity_is_per_shard(self):
        cfg = ServeConfig(tick_interval_s=0.01, max_steps_per_tick=20)
        assert cfg.steps_per_second_per_shard == pytest.approx(2000.0)


class TestServedSession:
    def test_script_runs_to_completion(self, classroom_game, scripts):
        factory = session_factory_for_script(classroom_game, scripts[0])
        session = factory("alice")
        session.start()
        assert play_to_completion(session)
        assert session.done
        assert not session.failed

    def test_rejects_unplayable_ops(self, classroom_game):
        engine = classroom_game.new_engine(with_video=False)
        with pytest.raises(TypeError):
            ServedSession("alice", engine, ops=["not-an-event"], dt=0.1)

    def test_winning_script_wins(self, classroom_game, scripts):
        factory = session_factory_for_script(classroom_game, scripts[0])
        session = factory("alice")
        session.start()
        play_to_completion(session)
        assert session.engine.state.outcome is not None


class TestSessionManager:
    def test_burst_completes_everything(self, classroom_game, scripts):
        cfg = ServeConfig(n_shards=2, tick_interval_s=0.002,
                          max_steps_per_tick=50)
        with SessionManager(cfg) as manager:
            gen = LoadGenerator(manager, classroom_game, scripts)
            report = gen.run(24, drain_timeout=30.0)
        assert report.drained
        assert report.admitted == 24
        assert report.completed == 24
        assert report.failed == 0
        assert report.rejected == 0

    def test_sessions_land_on_owning_shard(self, classroom_game, scripts):
        cfg = ServeConfig(n_shards=4, tick_interval_s=0.002,
                          max_steps_per_tick=50)
        factory = session_factory_for_script(classroom_game, scripts[0])
        # Pick ids that all hash to one shard; only it may complete work.
        with SessionManager(cfg) as manager:
            target = manager.shard_for("pinned-0")
            pinned = [f"pinned-{k}" for k in range(200)
                      if manager.shard_for(f"pinned-{k}") == target][:8]
            for pid in pinned:
                assert manager.submit(pid, factory)
            assert manager.drain(timeout=30.0)
            by_shard = manager.completed_by_shard
        assert by_shard[target] == len(pinned)
        assert sum(by_shard.values()) == len(pinned)

    def test_backpressure_rejects_over_cap(self, classroom_game, scripts):
        # Slow ticks: completions cannot race the submit loop below.
        cfg = ServeConfig(n_shards=2, max_sessions=4, tick_interval_s=0.05,
                          max_steps_per_tick=2)
        factory = session_factory_for_script(classroom_game, scripts[0])
        with SessionManager(cfg) as manager:
            accepted = sum(
                manager.submit(f"p-{k}", factory) for k in range(10)
            )
            rejected_now = manager.rejected_sessions
            assert manager.drain(timeout=30.0)
        assert accepted == 4
        assert rejected_now == 6
        assert manager.completed_sessions == 4

    def test_drain_leaves_no_active_sessions(self, classroom_game, scripts):
        cfg = ServeConfig(n_shards=3, tick_interval_s=0.002,
                          max_steps_per_tick=50)
        with SessionManager(cfg) as manager:
            gen = LoadGenerator(manager, classroom_game, scripts)
            gen.run(18, drain_timeout=30.0)
            assert manager.in_flight == 0
            assert all(v == 0 for v in manager.active_by_shard.values())
            for row in manager.shard_stats():
                assert row["queued"] == 0
            # Admissions stay closed after a drain.
            factory = session_factory_for_script(classroom_game, scripts[0])
            assert not manager.submit("late", factory)

    def test_shutdown_without_drain_discards_backlog(
        self, classroom_game, scripts
    ):
        cfg = ServeConfig(n_shards=2, tick_interval_s=0.05,
                          max_steps_per_tick=1)
        factory = session_factory_for_script(classroom_game, scripts[0])
        manager = SessionManager(cfg).start()
        for k in range(12):
            manager.submit(f"p-{k}", factory)
        manager.shutdown(drain=False)
        assert manager.in_flight == 0  # dropped sessions were released
        assert manager.completed_sessions < 12

    def test_shutdown_is_idempotent(self, classroom_game, scripts):
        manager = SessionManager(ServeConfig(n_shards=1)).start()
        assert manager.shutdown()
        assert manager.shutdown()

    def test_double_start_raises(self):
        manager = SessionManager(ServeConfig(n_shards=1))
        manager.start()
        try:
            with pytest.raises(RuntimeError):
                manager.start()
        finally:
            manager.shutdown(drain=False)

    def test_shard_threads_exit_after_shutdown(self, classroom_game, scripts):
        before = {t.name for t in threading.enumerate()}
        cfg = ServeConfig(n_shards=2, tick_interval_s=0.002)
        with SessionManager(cfg) as manager:
            LoadGenerator(manager, classroom_game, scripts).run(
                6, drain_timeout=30.0
            )
        after = {
            t.name for t in threading.enumerate()
            if t.name.startswith("repro-serve-shard-")
        }
        assert after <= before  # no serve threads leaked by this test


class TestServeMetrics:
    def test_counters_match_manager_accounting(
        self, live, classroom_game, scripts
    ):
        admitted0 = _value("repro_serve_admitted_total")
        rejected0 = _value("repro_serve_rejected_total")
        cfg = ServeConfig(n_shards=2, max_sessions=6, tick_interval_s=0.05,
                          max_steps_per_tick=2)
        factory = session_factory_for_script(classroom_game, scripts[0])
        completed0 = {
            label: _value("repro_serve_completed_total", shard=label)
            for label in ("0", "1")
        }
        with SessionManager(cfg) as manager:
            for k in range(10):
                manager.submit(f"m-{k}", factory)
            assert manager.drain(timeout=30.0)
            by_shard = manager.completed_by_shard
        assert _value("repro_serve_admitted_total") == admitted0 + 6
        assert _value("repro_serve_rejected_total") == rejected0 + 4
        for shard_index, count in by_shard.items():
            label = str(shard_index)
            assert (
                _value("repro_serve_completed_total", shard=label)
                == completed0[label] + count
            )

    def test_tick_histogram_records_per_shard(
        self, live, classroom_game, scripts
    ):
        hist = obs.get_registry().get("repro_serve_tick_seconds")
        n0 = hist.count_of(shard="0")
        cfg = ServeConfig(n_shards=1, tick_interval_s=0.002,
                          max_steps_per_tick=50)
        with SessionManager(cfg) as manager:
            LoadGenerator(manager, classroom_game, scripts).run(
                4, drain_timeout=30.0
            )
        assert hist.count_of(shard="0") > n0

    def test_gauges_zeroed_after_shutdown(self, live, classroom_game, scripts):
        cfg = ServeConfig(n_shards=2, tick_interval_s=0.002,
                          max_steps_per_tick=50)
        with SessionManager(cfg) as manager:
            LoadGenerator(manager, classroom_game, scripts).run(
                8, drain_timeout=30.0
            )
        for label in ("0", "1"):
            assert _value("repro_serve_active_sessions", shard=label) == 0
            assert _value("repro_serve_queue_depth", shard=label) == 0


class TestEventDrivenDrain:
    """drain() waits on a condition variable now, not a poll loop —
    same observable behavior (the burst/backpressure/timeout tests
    above all still pass), but completion wakes it immediately."""

    def test_drain_returns_without_waiting_a_poll_interval(
        self, classroom_game, scripts
    ):
        # With the old implementation this config forced drain() to
        # sleep drain_poll_s between checks; event-driven drain must
        # return as soon as the last session closes.
        cfg = ServeConfig(n_shards=2, tick_interval_s=0.002,
                          max_steps_per_tick=50, drain_poll_s=30.0)
        factory = session_factory_for_script(classroom_game, scripts[0])
        manager = SessionManager(cfg).start()
        try:
            for k in range(6):
                assert manager.submit(f"cv-{k}", factory)
            t0 = perf_counter()
            assert manager.drain(timeout=25.0)
            elapsed = perf_counter() - t0
        finally:
            manager.shutdown(drain=False)
        assert elapsed < 20.0, (
            f"drain took {elapsed:.1f}s — still polling at drain_poll_s?"
        )
        assert manager.in_flight == 0

    def test_drain_timeout_is_still_honored(self, classroom_game, scripts):
        # One op per 0.2s tick: the sessions cannot finish in 0.2s, so
        # a short drain must report failure (and promptly).
        cfg = ServeConfig(n_shards=1, tick_interval_s=0.2,
                          max_steps_per_tick=1, drain_poll_s=30.0)
        factory = session_factory_for_script(classroom_game, scripts[0])
        manager = SessionManager(cfg).start()
        try:
            for k in range(4):
                manager.submit(f"slow-{k}", factory)
            t0 = perf_counter()
            drained = manager.drain(timeout=0.3)
            elapsed = perf_counter() - t0
        finally:
            manager.shutdown(drain=False)
        assert not drained
        assert 0.25 <= elapsed < 5.0

    def test_drain_with_nothing_in_flight_is_immediate(self):
        manager = SessionManager(ServeConfig(
            n_shards=1, drain_poll_s=30.0
        )).start()
        try:
            t0 = perf_counter()
            assert manager.drain(timeout=10.0)
            elapsed = perf_counter() - t0
        finally:
            manager.shutdown(drain=False)
        assert elapsed < 1.0
