"""Tests for the validator and the winnability solver."""


from repro.core import (
    GameProject,
    ObjectEditor,
    ScenarioEditor,
    solve,
    validate,
)
from repro.core.solver import enumerate_dialogue_paths
from repro.core.templates import scene_footage
from repro.events import (
    EndGame,
    EventBinding,
    GiveItem,
    PopupImage,
    SetFlag,
    ShowText,
    SwitchScenario,
    Trigger,
)
from repro.objects import RectHotspot
from repro.runtime import Dialogue, DialogueChoice, DialogueNode
from repro.video import FrameSize

SIZE = FrameSize(48, 36)


def _base_project(n_rooms=2):
    project = GameProject("V")
    se = ScenarioEditor(project)
    oe = ObjectEditor(project)
    for k in range(n_rooms):
        se.import_footage(f"clip{k}", scene_footage(SIZE, k, duration=4))
        se.commit_whole(f"clip{k}")
        se.create_scenario(f"room{k}", f"Room {k}", f"clip{k}")
    return project, se, oe


class TestValidatorStructural:
    def test_empty_project(self):
        report = validate(GameProject("X"))
        assert not report.ok
        assert report.issues[0].code == "no-scenarios"

    def test_clean_winnable_project(self):
        project, se, oe = _base_project()
        oe.place_item("room0", "key", "Key", RectHotspot(1, 1, 4, 4),
                      description="a key")
        oe.place_image("room0", "door", "Door", RectHotspot(10, 1, 6, 10),
                       description="a door")
        oe.fetch_puzzle(target_scenario="room0", target_object="door",
                        item_id="key", success_text="Open!", end_outcome="won")
        report = validate(project)
        assert report.ok
        assert report.winnable is True
        assert report.solution_length == 2  # take key, use key

    def test_bad_switch_target(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "b", "B", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="b",
            actions=[SwitchScenario(target="mars")]))
        report = validate(project, check_winnable=False)
        assert any(i.code == "bad-switch-target" for i in report.errors)

    def test_unknown_binding_object(self):
        project, se, oe = _base_project()
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="ghost",
            actions=[ShowText(text="x")]))
        report = validate(project, check_winnable=False)
        assert any(i.code == "bad-binding-object" for i in report.errors)

    def test_object_in_wrong_scenario(self):
        project, se, oe = _base_project()
        oe.place_image("room1", "thing", "T", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="thing",
            actions=[ShowText(text="x")]))
        report = validate(project, check_winnable=False)
        assert any(i.code == "object-wrong-scenario" for i in report.errors)

    def test_missing_dialogue(self):
        from repro.objects import NPCObject

        project, se, oe = _base_project()
        project.scenarios["room0"].add_object(
            NPCObject(object_id="npc", name="N", hotspot=RectHotspot(0, 0, 4, 4),
                      dialogue_id="ghost-dialogue"))
        report = validate(project, check_winnable=False)
        assert any(i.code == "missing-dialogue" for i in report.errors)

    def test_unobtainable_item_warning(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "door", "Door", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.USE_ITEM, object_id="door",
            item_id="phantom", actions=[EndGame(outcome="won")]))
        report = validate(project, check_winnable=False)
        assert any(i.code == "unobtainable-item" for i in report.warnings)

    def test_item_via_dialogue_counts_as_obtainable(self):
        project, se, oe = _base_project()
        dlg = Dialogue("d", [DialogueNode("a", "Take it", [
            DialogueChoice("ok", None, actions=[GiveItem(item_id="gift")])])],
            root="a")
        oe.place_npc("room0", "npc", "N", RectHotspot(0, 0, 4, 6), dialogue=dlg)
        oe.place_image("room0", "door", "Door", RectHotspot(10, 0, 4, 6), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.USE_ITEM, object_id="door",
            item_id="gift", actions=[EndGame(outcome="won")]))
        report = validate(project, check_winnable=False)
        assert not any(i.code == "unobtainable-item" for i in report.warnings)

    def test_unreachable_and_dead_end_warnings(self):
        project, se, oe = _base_project(n_rooms=3)
        oe.place_image("room0", "b", "B", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="b",
            actions=[SwitchScenario(target="room1")]))
        report = validate(project, check_winnable=False)
        codes = {i.code for i in report.warnings}
        assert "unreachable-scenario" in codes  # room2
        assert "dead-end" in codes              # room1

    def test_mute_object_warning(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "vase", "Vase", RectHotspot(0, 0, 4, 4))
        report = validate(project, check_winnable=False)
        assert any(i.code == "mute-object" for i in report.warnings)

    def test_ungranted_reward_warning(self):
        project, se, oe = _base_project()
        oe.place_reward("room0", "badge", "Badge", RectHotspot(0, 0, 4, 4))
        report = validate(project, check_winnable=False)
        assert any(i.code == "ungranted-reward" for i in report.warnings)

    def test_condition_reference_warnings(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "b", "B", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="b",
            condition="has('never') and visited('mars') and prop('ghost','x')",
            actions=[ShowText(text="x")]))
        report = validate(project, check_winnable=False)
        codes = {i.code for i in report.warnings}
        assert {"condition-unknown-item", "condition-unknown-scenario",
                "condition-unknown-object"} <= codes

    def test_duplicate_object_id_error(self):
        from repro.objects import ImageObject

        project, se, oe = _base_project()
        project.scenarios["room0"].add_object(
            ImageObject(object_id="dup", name="a", hotspot=RectHotspot(0, 0, 4, 4)))
        project.scenarios["room1"].add_object(
            ImageObject(object_id="dup", name="b", hotspot=RectHotspot(0, 0, 4, 4)))
        report = validate(project, check_winnable=False)
        assert any(i.code == "duplicate-object-id" for i in report.errors)

    def test_bad_action_object_error(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "b", "B", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="b",
            actions=[PopupImage(object_id="ghost")]))
        report = validate(project, check_winnable=False)
        assert any(i.code == "bad-action-object" for i in report.errors)


class TestSolver:
    def test_unwinnable_detected(self):
        project, se, oe = _base_project()
        report = validate(project)  # no EndGame anywhere
        assert any(i.code == "unwinnable" for i in report.errors)
        assert report.winnable is False

    def test_multi_step_solution_found(self, classroom_game):
        result = solve(classroom_game)
        assert result.winnable is True
        kinds = [m.kind for m in result.winning_script]
        assert "take" in kinds and "use" in kinds

    def test_solution_is_shortest(self, classroom_game):
        result = solve(classroom_game)
        # classroom: go market, take ram, go back, use -> 4 moves
        assert len(result.winning_script) == 4

    def test_bound_returns_unknown(self, classroom_game):
        result = solve(classroom_game, max_states=1)
        assert result.winnable is None
        assert result.hit_bound

    def test_loss_is_not_a_win(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "bomb", "Bomb", RectHotspot(0, 0, 4, 4), description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="bomb",
            actions=[EndGame(outcome="lost")]))
        result = solve(project.compile())
        assert result.winnable is False
        assert result.outcomes_seen == {"lost"}

    def test_win_through_dialogue(self):
        project, se, oe = _base_project()
        dlg = Dialogue("d", [DialogueNode("a", "Win?", [
            DialogueChoice("Yes", None, actions=[EndGame(outcome="won")]),
            DialogueChoice("No", None),
        ])], root="a")
        oe.place_npc("room0", "npc", "N", RectHotspot(0, 0, 4, 6), dialogue=dlg)
        result = solve(project.compile())
        assert result.winnable is True
        assert result.winning_script[0].kind == "dialogue"

    def test_win_behind_flag_condition(self):
        project, se, oe = _base_project()
        oe.place_image("room0", "lever", "Lever", RectHotspot(0, 0, 4, 4),
                       description="d")
        oe.place_image("room0", "door", "Door", RectHotspot(10, 0, 4, 8),
                       description="d")
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="lever",
            actions=[SetFlag(name="open")]))
        project.events.add(EventBinding(
            scenario_id="room0", trigger=Trigger.CLICK, object_id="door",
            condition="flag('open')", actions=[EndGame(outcome="won")]))
        result = solve(project.compile())
        assert result.winnable is True
        assert [m.object_id for m in result.winning_script] == ["lever", "door"]


class TestDialoguePaths:
    def test_linear(self):
        d = Dialogue.linear("d", ["a", "b", "c"])
        assert enumerate_dialogue_paths(d) == [(0, 0)]

    def test_branching(self):
        d = Dialogue("d", [
            DialogueNode("a", "q", [
                DialogueChoice("x", None),
                DialogueChoice("y", "b"),
            ]),
            DialogueNode("b", "r"),
        ], root="a")
        paths = set(enumerate_dialogue_paths(d))
        assert paths == {(0,), (1,)}

    def test_cycle_bounded(self):
        d = Dialogue("d", [
            DialogueNode("a", "again?", [
                DialogueChoice("loop", "a"),
                DialogueChoice("stop", None),
            ]),
        ], root="a")
        paths = enumerate_dialogue_paths(d, max_paths=8, max_depth=5)
        assert 0 < len(paths) <= 8
        assert all(len(p) <= 5 for p in paths)
