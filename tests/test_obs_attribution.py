"""Unit tests for request-trace phase attribution (repro.obs.attribution)."""

import threading

import pytest

from repro import obs
from repro.obs.attribution import (
    PHASES,
    RequestTrace,
    Sampler,
    TraceStore,
    get_store,
    new_trace_id,
)


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    obs.reset()
    yield obs
    obs.reset()
    obs.set_enabled(was)


def _value(name, **labels):
    metric = obs.get_registry().get(name)
    assert metric is not None, f"metric {name} not registered"
    return metric.value(**labels)


class TestSampler:
    def test_zero_rate_never_fires(self):
        s = Sampler(0.0)
        assert not any(s() for _ in range(100))

    def test_full_rate_always_fires(self):
        s = Sampler(1.0)
        assert all(s() for _ in range(100))

    def test_one_percent_is_one_in_a_hundred(self):
        s = Sampler(0.01)
        hits = [i for i in range(300) if s()]
        assert hits == [0, 100, 200]

    def test_deterministic_across_instances(self):
        a, b = Sampler(0.25), Sampler(0.25)
        assert [a() for _ in range(40)] == [b() for _ in range(40)]

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Sampler(-0.1)
        with pytest.raises(ValueError):
            Sampler(1.5)

    def test_thread_safe_counting(self):
        s = Sampler(0.1)  # period 10
        hits = []

        def worker():
            local = sum(1 for _ in range(1000) if s())
            hits.append(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(hits) == 4000 // 10


class TestRequestTrace:
    def test_marks_partition_wall_time(self):
        tr = RequestTrace("t1", "p1")
        for i, phase in enumerate(PHASES):
            tr.mark(phase, at=tr.t0 + 0.01 * (i + 1))
        timeline = tr.timeline()
        assert [p["phase"] for p in timeline["phases"]] == list(PHASES)
        # each segment starts where the previous one ended: no gaps
        edge = 0.0
        for p in timeline["phases"]:
            assert p["start_s"] == pytest.approx(edge, abs=1e-9)
            edge = p["start_s"] + p["duration_s"]
        total = sum(p["duration_s"] for p in timeline["phases"])
        assert total == pytest.approx(0.05, abs=1e-9)

    def test_phase_totals_merge_repeated_marks(self):
        tr = RequestTrace("t2", None)
        tr.mark("flush", at=tr.t0 + 0.01)
        tr.mark("flush", at=tr.t0 + 0.03)
        assert tr.phase_totals() == {"flush": pytest.approx(0.03)}

    def test_open_trace_reports_open_status(self):
        tr = RequestTrace("t3", None)
        assert tr.timeline()["status"] == "open"

    def test_clock_regression_clamps_to_zero(self):
        tr = RequestTrace("t4", None)
        assert tr.mark("accept", at=tr.t0 - 1.0) == 0.0


class TestTraceStore:
    def test_start_refused_when_obs_disabled(self):
        was = obs.enabled()
        obs.set_enabled(False)
        try:
            store = TraceStore()
            assert not store.start("tid", player="p")
            assert store.open_count == 0
        finally:
            obs.set_enabled(was)

    def test_lifecycle_and_metrics(self, live):
        store = TraceStore()
        assert store.start("tid-1", player="p1", source="test")
        assert _value("repro_trace_open") == 1
        store.mark("tid-1", "accept")
        store.mark("tid-1", "flush")
        finished = store.finish("tid-1", status="ok")
        assert finished is not None
        assert finished.status == "ok"
        assert _value("repro_trace_open") == 0
        assert _value("repro_trace_requests_total", status="ok") == 1
        timeline = store.get("tid-1")
        assert timeline["status"] == "ok"
        assert timeline["attributes"] == {"source": "test"}
        assert [p["phase"] for p in timeline["phases"]] == ["accept", "flush"]

    def test_duplicate_id_refused(self, live):
        store = TraceStore()
        assert store.start("dup")
        assert not store.start("dup")
        store.finish("dup")
        # finished ids stay reserved while remembered
        assert not store.start("dup")

    def test_finish_is_idempotent(self, live):
        store = TraceStore()
        store.start("once")
        assert store.finish("once") is not None
        assert store.finish("once") is None
        assert _value("repro_trace_requests_total", status="ok") == 1

    def test_marks_on_unknown_ids_are_noops(self, live):
        store = TraceStore()
        store.mark("ghost", "accept")
        store.annotate("ghost", a=1)
        store.increment("ghost", "n")
        store.mark(None, "accept")
        assert store.finish("ghost") is None
        assert store.get("ghost") is None

    def test_open_overflow_orphans_oldest(self, live):
        store = TraceStore(max_open=2)
        store.start("a")
        store.start("b")
        store.start("c")  # evicts "a"
        assert store.open_count == 2
        assert _value("repro_trace_orphaned_total") == 1
        assert store.get("a")["status"] == "orphaned"

    def test_abandon_counts_an_orphan(self, live):
        store = TraceStore()
        store.start("gone")
        store.abandon("gone")
        assert store.open_count == 0
        assert _value("repro_trace_orphaned_total") == 1
        assert _value("repro_trace_open") == 0
        assert store.get("gone")["status"] == "orphaned"

    def test_finished_table_ages_out_oldest(self, live):
        store = TraceStore(max_finished=2)
        for tid in ("t1", "t2", "t3"):
            store.start(tid)
            store.finish(tid)
        assert store.finished_ids() == ["t2", "t3"]
        assert store.latest() == "t3"
        assert store.get("t1") is None

    def test_increment_accumulates(self, live):
        store = TraceStore()
        store.start("n")
        store.increment("n", "live_inputs")
        store.increment("n", "live_inputs", amount=2)
        store.finish("n")
        assert store.get("n")["attributes"]["live_inputs"] == 3

    def test_clear_drops_everything_without_orphans(self, live):
        store = TraceStore()
        store.start("open-1")
        store.start("done-1")
        store.finish("done-1")
        store.clear()
        assert store.open_count == 0
        assert store.finished_count == 0
        assert store.latest() is None
        # deliberate teardown is not trace loss
        assert _value("repro_trace_orphaned_total") == 0


class TestModuleWiring:
    def test_new_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 16
        int(tid, 16)  # hex
        assert tid != new_trace_id()

    def test_global_store_reset_via_obs(self, live):
        store = get_store()
        store.start("global-1")
        store.finish("global-1")
        assert store.finished_count == 1
        obs.reset()
        assert store.finished_count == 0
        assert store.open_count == 0

    def test_obs_exports(self):
        assert obs.get_trace_store() is get_store()
        assert obs.PHASES == PHASES
