"""Fuzz / property tests: the runtime survives arbitrary input streams.

The gaming platform faces students, who click *everywhere*.  These tests
drive the real engine with randomised input streams and assert the
global invariants that must survive any interaction sequence:

* no exception ever escapes ``handle_input``/``tick``/``render``;
* the score never goes down;
* inventory counts are non-negative and items are never duplicated by
  the take gesture;
* the current scenario always exists;
* once finished, the state never changes again;
* save/load at any point is lossless.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exploration_game, fetch_quest_game
from repro.runtime import GameState, KeyPress, MouseClick, MouseDrag
from repro.video import FrameSize

SIZE = FrameSize(96, 72)


def _random_event(rng, w, h):
    kind = rng.integers(0, 4)
    if kind == 0:
        return MouseClick(float(rng.uniform(0, w)), float(rng.uniform(0, h)),
                          button="left" if rng.random() < 0.8 else "right")
    if kind == 1:
        return MouseDrag(float(rng.uniform(0, w)), float(rng.uniform(0, h)),
                         float(rng.uniform(0, w)), float(rng.uniform(0, h)))
    if kind == 2:
        return KeyPress(str(rng.choice(["up", "down", "left", "right", "x"])))
    return None  # a tick instead


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_monkey_session_invariants(seed):
    """500 random inputs: invariants hold, nothing raises."""
    game = fetch_quest_game(n_quests=2, size=SIZE, seed=100 + seed).build()
    eng = game.new_engine(with_video=False)
    eng.start()
    rng = np.random.default_rng(seed)
    w, h = eng.frame_size.width, eng.frame_size.height

    last_score = 0
    for step in range(500):
        event = _random_event(rng, w, h)
        if event is None:
            eng.tick(float(rng.uniform(0.01, 2.0)))
        else:
            eng.handle_input(event)
        state = eng.state
        assert state.score >= last_score
        last_score = state.score
        assert state.current_scenario in eng.scenarios
        for slot in state.inventory.slots:
            assert slot.count >= 1
        if state.finished:
            # Post-game inputs must be inert.
            frozen = state.to_dict()
            eng.handle_input(MouseClick(1, 1))
            assert eng.state.to_dict() == frozen
            break
    eng.render()  # the composite must still work at the end


@pytest.mark.parametrize("seed", [7, 8])
def test_monkey_session_save_load_midstream(seed):
    """Random play, snapshot at random points: load == save."""
    game = exploration_game(n_exhibits=2, size=SIZE).build()
    eng = game.new_engine(with_video=False)
    eng.start()
    rng = np.random.default_rng(seed)
    w, h = eng.frame_size.width, eng.frame_size.height
    for step in range(200):
        event = _random_event(rng, w, h)
        if event is None:
            eng.tick(0.5)
        else:
            eng.handle_input(event)
        if step % 37 == 0:
            snapshot = eng.state.to_dict()
            restored = GameState.from_dict(snapshot)
            assert restored.to_dict() == snapshot
        if eng.state.finished:
            break


@given(
    clicks=st.lists(
        st.tuples(st.floats(-50, 150), st.floats(-50, 150), st.booleans()),
        max_size=60,
    )
)
@settings(max_examples=20, deadline=None)
def test_property_arbitrary_click_streams(clicks, classroom_game):
    """Hypothesis: any click stream (including off-frame coordinates)
    leaves the engine consistent."""
    eng = classroom_game.new_engine(with_video=False)
    eng.start()
    for x, y, right in clicks:
        eng.handle_input(MouseClick(x, y, button="right" if right else "left"))
        if eng.state.finished:
            break
    assert eng.state.score >= 0
    assert eng.state.current_scenario in eng.scenarios
    # The session is either winnable from here or already decided.
    state_dict = eng.state.to_dict()
    assert GameState.from_dict(state_dict).to_dict() == state_dict


def test_fuzz_container_truncation():
    """Truncated containers always raise ContainerError, never decode
    garbage silently."""
    from repro.video import ContainerError, VideoReader, VideoWriter, Frame

    w = VideoWriter(SIZE, codec_name="rle")
    w.add_segment([Frame.blank(SIZE, (50, 60, 70))] * 3)
    data = w.tobytes()
    for cut in (4, 10, len(data) // 2, len(data) - 1):
        with pytest.raises(ContainerError):
            VideoReader(data[:cut])


def test_fuzz_container_bitflips():
    """Bit flips either raise a library error or decode to *some* frame —
    never crash with an unrelated exception."""
    import numpy as np

    from repro.video import CodecError, ContainerError, Frame, VideoReader, VideoWriter

    w = VideoWriter(SIZE, codec_name="rle")
    w.add_segment([Frame.blank(SIZE, (50, 60, 70))] * 3)
    data = bytearray(w.tobytes())
    rng = np.random.default_rng(0)
    for _ in range(30):
        corrupted = bytearray(data)
        pos = int(rng.integers(0, len(corrupted)))
        corrupted[pos] ^= 1 << int(rng.integers(0, 8))
        try:
            reader = VideoReader(bytes(corrupted))
            reader.decode_segment(0)
        except (ContainerError, CodecError, ValueError):
            pass  # detected corruption: acceptable
        # Decoding to a wrong-but-valid frame is also acceptable; any
        # other exception type would fail the test by propagating.
