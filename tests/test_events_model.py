"""Tests for actions, event bindings/table and the bus."""

import pytest

from repro.events import (
    ActionError,
    AwardBonus,
    EndGame,
    EventBinding,
    EventBus,
    EventError,
    EventTable,
    GiveItem,
    OpenWeb,
    SetFlag,
    ShowText,
    SwitchScenario,
    Trigger,
    action_from_dict,
)


class PassCtx:
    def has_item(self, i): return True
    def item_count(self, i): return 1
    def get_flag(self, n): return True
    def has_visited(self, s): return True
    def get_score(self): return 100
    def get_prop(self, o, k): return True


class FailCtx(PassCtx):
    def get_flag(self, n): return False


class TestActions:
    def test_validation(self):
        with pytest.raises(ActionError):
            SwitchScenario(target="")
        with pytest.raises(ActionError):
            ShowText(text="")
        with pytest.raises(ActionError):
            OpenWeb(url="nope")
        with pytest.raises(ActionError):
            AwardBonus(points=-1)
        with pytest.raises(ActionError):
            EndGame(outcome="")

    def test_dict_roundtrip_all_kinds(self):
        actions = [
            SwitchScenario(target="x"),
            ShowText(text="hi"),
            OpenWeb(url="https://a/b"),
            GiveItem(item_id="i"),
            SetFlag(name="f", value=False),
            AwardBonus(points=3, reward_id="r"),
            EndGame(outcome="lost"),
        ]
        for a in actions:
            b = action_from_dict(a.to_dict())
            assert b == a

    def test_from_dict_unknown(self):
        with pytest.raises(ActionError):
            action_from_dict({"kind": "teleport"})

    def test_from_dict_bad_fields(self):
        with pytest.raises(ActionError):
            action_from_dict({"kind": "show_text", "nope": 1})

    def test_frozen(self):
        a = ShowText(text="hi")
        with pytest.raises(Exception):
            a.text = "bye"


class TestEventBinding:
    def _b(self, **kw):
        defaults = dict(
            scenario_id="s1",
            trigger=Trigger.CLICK,
            object_id="obj",
            actions=[ShowText(text="x")],
        )
        defaults.update(kw)
        return EventBinding(**defaults)

    def test_validation(self):
        with pytest.raises(EventError):
            self._b(trigger="hover")
        with pytest.raises(EventError):
            self._b(object_id=None)  # click needs an object
        with pytest.raises(EventError):
            self._b(trigger=Trigger.USE_ITEM)  # needs item_id
        with pytest.raises(EventError):
            self._b(trigger=Trigger.TIMER, object_id=None)  # needs seconds
        with pytest.raises(EventError):
            self._b(actions=[])
        with pytest.raises(EventError):
            self._b(scenario_id="")

    def test_bad_condition_rejected_at_construction(self):
        from repro.events import ConditionError

        with pytest.raises(ConditionError):
            self._b(condition="has(")

    def test_enter_needs_no_object(self):
        b = EventBinding(scenario_id="s1", trigger=Trigger.ENTER,
                         actions=[ShowText(text="x")])
        assert b.matches("s1", Trigger.ENTER, None, None)

    def test_matches_scoping(self):
        b = self._b()
        assert b.matches("s1", Trigger.CLICK, "obj", None)
        assert not b.matches("s2", Trigger.CLICK, "obj", None)
        assert not b.matches("s1", Trigger.EXAMINE, "obj", None)
        assert not b.matches("s1", Trigger.CLICK, "other", None)

    def test_global_scope(self):
        g = self._b(scenario_id="*")
        assert g.matches("anything", Trigger.CLICK, "obj", None)

    def test_use_item_matching(self):
        b = self._b(trigger=Trigger.USE_ITEM, item_id="ram")
        assert b.matches("s1", Trigger.USE_ITEM, "obj", "ram")
        assert not b.matches("s1", Trigger.USE_ITEM, "obj", "fan")

    def test_dict_roundtrip(self):
        b = self._b(condition="flag('x')", once=True, priority=2)
        b2 = EventBinding.from_dict(b.to_dict())
        assert b2.binding_id == b.binding_id
        assert b2.condition == b.condition
        assert b2.once and b2.priority == 2
        assert b2.actions == b.actions


class TestEventTable:
    def _table(self):
        t = EventTable()
        t.add(EventBinding(binding_id="local", scenario_id="s1",
                           trigger=Trigger.CLICK, object_id="o",
                           actions=[ShowText(text="local")]))
        t.add(EventBinding(binding_id="global", scenario_id="*",
                           trigger=Trigger.CLICK, object_id="o",
                           actions=[ShowText(text="global")]))
        t.add(EventBinding(binding_id="hipri", scenario_id="s1",
                           trigger=Trigger.CLICK, object_id="o", priority=5,
                           actions=[ShowText(text="hipri")]))
        return t

    def test_duplicate_id_rejected(self):
        t = self._table()
        with pytest.raises(EventError):
            t.add(EventBinding(binding_id="local", scenario_id="s1",
                               trigger=Trigger.CLICK, object_id="o",
                               actions=[ShowText(text="x")]))

    def test_match_order_local_priority_authoring(self):
        t = self._table()
        ids = [b.binding_id for b in t.match("s1", Trigger.CLICK, "o")]
        assert ids == ["hipri", "local", "global"]

    def test_condition_filtering(self):
        t = EventTable()
        t.add(EventBinding(binding_id="guarded", scenario_id="s1",
                           trigger=Trigger.CLICK, object_id="o",
                           condition="flag('go')",
                           actions=[ShowText(text="x")]))
        assert t.match("s1", Trigger.CLICK, "o", ctx=PassCtx())
        assert not t.match("s1", Trigger.CLICK, "o", ctx=FailCtx())

    def test_once_exclusion(self):
        t = EventTable()
        t.add(EventBinding(binding_id="one", scenario_id="s1",
                           trigger=Trigger.CLICK, object_id="o", once=True,
                           actions=[ShowText(text="x")]))
        assert t.match("s1", Trigger.CLICK, "o", exclude_ids={"one"}) == []
        assert len(t.match("s1", Trigger.CLICK, "o", exclude_ids=set())) == 1

    def test_remove_and_get(self):
        t = self._table()
        b = t.remove("global")
        assert b.binding_id == "global"
        assert len(t) == 2
        with pytest.raises(EventError):
            t.get("global")

    def test_for_scenario(self):
        t = self._table()
        assert {b.binding_id for b in t.for_scenario("s1")} == {"local", "global", "hipri"}
        assert {b.binding_id for b in t.for_scenario("s2")} == {"global"}

    def test_timers_sorted(self):
        t = EventTable()
        for sec, bid in [(9.0, "late"), (2.0, "early")]:
            t.add(EventBinding(binding_id=bid, scenario_id="s1",
                               trigger=Trigger.TIMER, timer_seconds=sec,
                               actions=[ShowText(text="x")]))
        assert [b.binding_id for b in t.timers_for("s1")] == ["early", "late"]

    def test_list_roundtrip(self):
        t = self._table()
        t2 = EventTable.from_list(t.to_list())
        assert [b.binding_id for b in t2] == [b.binding_id for b in t]


class TestEventBus:
    def test_topic_and_wildcard_delivery(self):
        bus = EventBus()
        got, wild = [], []
        bus.subscribe("a", lambda n: got.append(n.topic))
        bus.subscribe("*", lambda n: wild.append(n.topic))
        bus.publish("a")
        bus.publish("b")
        assert got == ["a"]
        assert wild == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        tok = bus.subscribe("a", lambda n: got.append(1))
        assert bus.unsubscribe(tok)
        bus.publish("a")
        assert got == []
        assert not bus.unsubscribe(tok)

    def test_error_quarantine(self):
        bus = EventBus(max_errors=2)
        calls = []

        def bad(n):
            calls.append(1)
            raise RuntimeError("boom")

        bus.subscribe("a", bad)
        bus.publish("a")
        bus.publish("a")  # second failure -> quarantined
        bus.publish("a")
        assert len(calls) == 2
        assert bus.quarantined

    def test_error_counter_resets_on_success(self):
        bus = EventBus(max_errors=2)
        state = {"fail": True, "calls": 0}

        def flaky(n):
            state["calls"] += 1
            if state["fail"]:
                state["fail"] = False
                raise RuntimeError()

        bus.subscribe("a", flaky)
        for _ in range(5):
            bus.publish("a")
        assert state["calls"] == 5  # never quarantined

    def test_subscriber_count(self):
        bus = EventBus()
        bus.subscribe("a", lambda n: None)
        bus.subscribe("*", lambda n: None)
        assert bus.subscriber_count("a") == 1
        assert bus.subscriber_count() == 2

    def test_payload_copied(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", lambda n: seen.append(n.payload))
        payload = {"k": 1}
        bus.publish("a", payload)
        payload["k"] = 2
        assert seen[0]["k"] == 1
