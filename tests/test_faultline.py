"""Faultline unit tests: spec validation, seeded compile, the injector."""

import threading

import pytest

from repro import faultline, obs
from repro.faultline import FaultPlan, FaultSpec, builtin_plans
from repro.obs import attribution


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faultline.uninstall()
    yield
    faultline.uninstall()
    assert faultline.ACTIVE is False


def _injected(**labels):
    metric = obs.get_registry().get("repro_fault_injected_total")
    return metric.value(**labels)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("gateway.teleport", "drop")

    def test_kind_must_match_site(self):
        with pytest.raises(ValueError, match="does not take kind"):
            FaultSpec("wal.fsync", "torn_write")

    def test_trigger_bounds(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("wal.fsync", "stall", at=0)
        with pytest.raises(ValueError, match="window"):
            FaultSpec("wal.fsync", "stall", at=None, window=(5, 2))
        with pytest.raises(ValueError, match="times"):
            FaultSpec("wal.fsync", "stall", times=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec("wal.fsync", "stall", seconds=-1.0)
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec("wal.write", "torn_write", fraction=1.0)

    def test_explicit_at_skips_window_validation(self):
        # window is only consulted for seeded specs
        spec = FaultSpec("wal.fsync", "stall", at=3, window=(9, 1))
        assert spec.at == 3


class TestCompile:
    def test_same_seed_same_schedule(self):
        plan = builtin_plans()["ci-smoke"]
        a = plan.compile(123)
        b = plan.compile(123)
        assert [af.first_hit for af in a.armed] == [
            af.first_hit for af in b.armed
        ]

    def test_different_seeds_explore_different_hits(self):
        plan = FaultPlan(
            name="wide",
            specs=(FaultSpec("wal.write", "error", at=None,
                             window=(1, 10_000)),),
        )
        hits = {plan.compile(s).armed[0].first_hit for s in range(8)}
        assert len(hits) > 1

    def test_seeded_hits_stay_inside_the_window(self):
        plan = builtin_plans()["torn-tail"]
        for seed in range(20):
            (af,) = plan.compile(seed).armed
            lo, hi = af.spec.window
            assert lo <= af.first_hit <= hi

    def test_last_hit_spans_times(self):
        plan = FaultPlan(
            name="span",
            specs=(FaultSpec("serve.tick", "stall", at=4, times=3),),
        )
        (af,) = plan.compile().armed
        assert (af.first_hit, af.last_hit) == (4, 6)

    def test_builtin_plans_all_compile(self):
        for name, plan in builtin_plans().items():
            compiled = plan.compile()
            assert compiled.name == name
            assert len(compiled.armed) == len(plan.specs)


class TestInjector:
    def test_fires_on_scheduled_hits_only(self):
        plan = FaultPlan(
            name="t", specs=(FaultSpec("serve.tick", "stall", at=3,
                                       times=2, seconds=0.5),),
        )
        injector = faultline.install(plan)
        fired = [faultline.fire("serve.tick") for _ in range(6)]
        assert [a is not None for a in fired] == [
            False, False, True, True, False, False,
        ]
        assert fired[2].seconds == 0.5
        assert injector.injected_total == 2
        assert injector.all_fired()
        assert injector.hits == {"serve.tick": 6}

    def test_sites_count_hits_independently(self):
        plan = FaultPlan(
            name="t", specs=(FaultSpec("wal.fsync", "stall", at=2),),
        )
        faultline.install(plan)
        assert faultline.fire("wal.write") is None  # other site: no hit here
        assert faultline.fire("wal.fsync") is None
        assert faultline.fire("wal.fsync") is not None

    def test_report_and_counter(self, live):
        plan = FaultPlan(
            name="t", specs=(FaultSpec("gateway.frame", "drop", at=1),),
        )
        injector = faultline.install(plan)
        before = _injected(site="gateway.frame", kind="drop")
        assert not injector.all_fired()
        faultline.fire("gateway.frame")
        (row,) = injector.report()
        assert row["site"] == "gateway.frame"
        assert row["fired"] == 1
        assert _injected(site="gateway.frame", kind="drop") == before + 1

    def test_fire_annotates_traces(self, live):
        store = attribution.get_store()
        trace_id = attribution.new_trace_id()
        assert store.start(trace_id, player="chaos-test")
        plan = FaultPlan(
            name="t", specs=(FaultSpec("gateway.frame", "drop", at=1),),
        )
        faultline.install(plan)
        faultline.fire("gateway.frame", traces=[trace_id, None])
        store.finish(trace_id)
        trace = store.get(trace_id)
        assert trace["attributes"]["fault"] == "gateway.frame:drop"
        assert trace["attributes"]["fault_hit"] == 1

    def test_concurrent_hits_fire_exactly_once(self):
        plan = FaultPlan(
            name="t", specs=(FaultSpec("serve.tick", "stall", at=50),),
        )
        injector = faultline.install(plan)
        hits = 0

        def worker():
            for _ in range(100):
                faultline.fire("serve.tick")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hits = injector.hits["serve.tick"]
        assert hits == 400
        assert injector.injected_total == 1


class TestLifecycle:
    def test_install_sets_active_and_double_install_rejected(self):
        assert faultline.ACTIVE is False
        faultline.install(builtin_plans()["torn-tail"])
        assert faultline.ACTIVE is True
        with pytest.raises(RuntimeError, match="already"):
            faultline.install(builtin_plans()["fsync-stall"])
        assert faultline.current() is not None

    def test_uninstall_is_idempotent_and_returns_injector(self):
        injector = faultline.install(builtin_plans()["torn-tail"])
        assert faultline.uninstall() is injector
        assert faultline.ACTIVE is False
        assert faultline.uninstall() is None

    def test_fire_without_injector_is_noop(self):
        assert faultline.fire("wal.fsync") is None
