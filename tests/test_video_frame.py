"""Unit tests for repro.video.frame."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.frame import (
    Frame,
    FrameSize,
    clip_rect,
    color_histogram,
    frame_absdiff,
    hist_l1_distance,
)


class TestFrameSize:
    def test_shape_and_pixels(self):
        s = FrameSize(8, 4)
        assert s.shape == (4, 8, 3)
        assert s.pixels == 32

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FrameSize(0, 5)
        with pytest.raises(ValueError):
            FrameSize(5, -1)

    def test_contains(self):
        s = FrameSize(4, 3)
        assert s.contains(0, 0) and s.contains(3, 2)
        assert not s.contains(4, 0)
        assert not s.contains(0, 3)
        assert not s.contains(-1, 0)


class TestClipRect:
    def test_inside(self):
        assert clip_rect(1, 1, 2, 2, FrameSize(10, 10)) == (1, 1, 3, 3)

    def test_partial_overlap(self):
        assert clip_rect(-2, -2, 5, 5, FrameSize(10, 10)) == (0, 0, 3, 3)
        assert clip_rect(8, 8, 5, 5, FrameSize(10, 10)) == (8, 8, 10, 10)

    def test_fully_outside_is_empty(self):
        x0, y0, x1, y1 = clip_rect(20, 20, 5, 5, FrameSize(10, 10))
        assert x0 == x1 or y0 == y1

    def test_negative_size_is_empty(self):
        x0, y0, x1, y1 = clip_rect(2, 2, -3, 4, FrameSize(10, 10))
        assert x0 == x1


class TestFrameConstruction:
    def test_blank_color(self):
        f = Frame.blank(FrameSize(4, 4), (10, 20, 30))
        assert f.data.shape == (4, 4, 3)
        assert (f.data[2, 2] == [10, 20, 30]).all()

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((4, 4), dtype=np.uint8))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            Frame(np.zeros((4, 4, 3), dtype=np.float32))

    def test_gradient_endpoints(self):
        f = Frame.from_gradient(FrameSize(4, 10), (0, 0, 0), (250, 250, 250))
        assert f.data[0].max() <= 5
        assert f.data[-1].min() >= 245

    def test_bytes_roundtrip(self):
        f = Frame.from_gradient(FrameSize(6, 5), (10, 100, 200), (200, 100, 10))
        g = Frame.frombytes(f.tobytes(), f.size)
        assert f == g

    def test_frombytes_length_mismatch(self):
        with pytest.raises(ValueError):
            Frame.frombytes(b"\x00" * 10, FrameSize(4, 4))

    def test_copy_is_independent(self):
        f = Frame.blank(FrameSize(4, 4))
        g = f.copy()
        g.data[0, 0] = 255
        assert f.data[0, 0, 0] == 0

    def test_equality(self):
        a = Frame.blank(FrameSize(3, 3), (1, 2, 3))
        b = Frame.blank(FrameSize(3, 3), (1, 2, 3))
        c = Frame.blank(FrameSize(3, 3), (1, 2, 4))
        assert a == b and a != c

    def test_checksum_changes_with_content_and_order(self):
        a = Frame.blank(FrameSize(4, 4), (1, 0, 0))
        b = Frame.blank(FrameSize(4, 4), (0, 1, 0))
        assert a.checksum() != b.checksum()


class TestRasterOps:
    def test_fill_rect_clipped(self):
        f = Frame.blank(FrameSize(8, 8))
        f.fill_rect(-2, -2, 4, 4, (255, 0, 0))
        assert (f.data[0, 0] == [255, 0, 0]).all()
        assert (f.data[2, 2] == [0, 0, 0]).all()

    def test_fill_rect_outside_is_noop(self):
        f = Frame.blank(FrameSize(8, 8))
        f.fill_rect(100, 100, 4, 4, (255, 0, 0))
        assert f.data.sum() == 0

    def test_draw_border_leaves_interior(self):
        f = Frame.blank(FrameSize(10, 10))
        f.draw_border(1, 1, 8, 8, (9, 9, 9))
        assert (f.data[1, 4] == 9).all()
        assert (f.data[5, 5] == 0).all()

    def test_draw_disc_radius(self):
        f = Frame.blank(FrameSize(20, 20))
        f.draw_disc(10, 10, 4, (255, 255, 255))
        assert (f.data[10, 10] == 255).all()
        assert (f.data[10, 14] == 255).all()  # on the radius
        assert (f.data[10, 15] == 0).all()

    def test_draw_disc_clipped_at_edge(self):
        f = Frame.blank(FrameSize(10, 10))
        f.draw_disc(0, 0, 3, (255, 0, 0))  # mostly off-frame, no crash
        assert (f.data[0, 0] == [255, 0, 0]).all()

    def test_blit_and_clip(self):
        f = Frame.blank(FrameSize(8, 8))
        patch = np.full((4, 4, 3), 200, dtype=np.uint8)
        f.blit(patch, 6, 6)  # half off-frame
        assert (f.data[7, 7] == 200).all()
        assert (f.data[5, 5] == 0).all()

    def test_blit_rejects_bad_shape(self):
        f = Frame.blank(FrameSize(8, 8))
        with pytest.raises(ValueError):
            f.blit(np.zeros((4, 4), dtype=np.uint8), 0, 0)

    def test_blend_full_opacity_equals_blit(self):
        f = Frame.blank(FrameSize(8, 8))
        src = np.full((3, 3, 3), 100, dtype=np.uint8)
        f.blend(src, np.ones((3, 3), dtype=np.float32), 2, 2)
        assert (f.data[3, 3] == 100).all()

    def test_blend_half_opacity(self):
        f = Frame.blank(FrameSize(8, 8), (200, 200, 200))
        src = np.zeros((2, 2, 3), dtype=np.uint8)
        f.blend(src, np.full((2, 2), 0.5, dtype=np.float32), 0, 0)
        assert abs(int(f.data[0, 0, 0]) - 100) <= 1

    def test_blend_alpha_shape_mismatch(self):
        f = Frame.blank(FrameSize(8, 8))
        with pytest.raises(ValueError):
            f.blend(
                np.zeros((2, 2, 3), dtype=np.uint8),
                np.zeros((3, 3), dtype=np.float32),
                0,
                0,
            )


class TestAnalysis:
    def test_gray_range(self):
        f = Frame.blank(FrameSize(4, 4), (255, 255, 255))
        g = f.to_gray()
        assert g.shape == (4, 4)
        assert abs(float(g[0, 0]) - 255.0) < 1.0

    def test_histogram_normalised(self):
        f = Frame.from_gradient(FrameSize(16, 16), (0, 0, 0), (255, 255, 255))
        h = color_histogram(f, 8)
        assert h.shape == (512,)
        assert abs(h.sum() - 1.0) < 1e-9

    def test_histogram_bins_validation(self):
        f = Frame.blank(FrameSize(4, 4))
        with pytest.raises(ValueError):
            color_histogram(f, 1)

    def test_hist_distance_identical_zero(self):
        f = Frame.from_gradient(FrameSize(8, 8), (10, 20, 30), (200, 100, 0))
        h = color_histogram(f)
        assert hist_l1_distance(h, h) == 0.0

    def test_hist_distance_bounds(self):
        a = color_histogram(Frame.blank(FrameSize(8, 8), (0, 0, 0)))
        b = color_histogram(Frame.blank(FrameSize(8, 8), (255, 255, 255)))
        assert abs(hist_l1_distance(a, b) - 2.0) < 1e-9

    def test_absdiff(self):
        a = Frame.blank(FrameSize(4, 4), (10, 10, 10))
        b = Frame.blank(FrameSize(4, 4), (13, 13, 13))
        assert frame_absdiff(a, b) == pytest.approx(3.0)

    def test_absdiff_size_mismatch(self):
        with pytest.raises(ValueError):
            frame_absdiff(
                Frame.blank(FrameSize(4, 4)), Frame.blank(FrameSize(5, 4))
            )


@given(
    w=st.integers(1, 24),
    h=st.integers(1, 24),
    x=st.integers(-30, 30),
    y=st.integers(-30, 30),
    rw=st.integers(0, 30),
    rh=st.integers(0, 30),
)
@settings(max_examples=60, deadline=None)
def test_clip_rect_always_within_bounds(w, h, x, y, rw, rh):
    """Property: clipped boxes are inside the frame and well-ordered."""
    size = FrameSize(w, h)
    x0, y0, x1, y1 = clip_rect(x, y, rw, rh, size)
    assert 0 <= x0 <= x1 <= w
    assert 0 <= y0 <= y1 <= h


@given(
    data=st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_frame_bytes_roundtrip_property(data):
    """Property: tobytes/frombytes is the identity for random frames."""
    rng = np.random.default_rng(data)
    arr = rng.integers(0, 256, size=(7, 9, 3), dtype=np.uint8)
    f = Frame(arr)
    assert Frame.frombytes(f.tobytes(), f.size) == f
