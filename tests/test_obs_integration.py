"""Instrumentation wired into the runtime: engine, session, net, parallel.

These tests exercise real subsystems with recording enabled and assert
on metric *deltas* (the registry is process-global, so absolute values
depend on test order).
"""

import pytest

from repro import obs
from repro.events import EventBinding, EventTable, ShowText, Trigger
from repro.net import Channel, SegmentCache, StreamSession
from repro.runtime import MouseClick, SessionError, SessionRecorder
from repro.video import VideoReader
from repro.graph import build_graph


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


def _value(name, **labels):
    metric = obs.get_registry().get(name)
    assert metric is not None, f"metric {name} not registered"
    return metric.value(**labels)


class TestEngineInstrumentation:
    def test_dispatch_and_interaction_metrics(self, live, classroom_game):
        engine = classroom_game.new_engine(with_video=False)
        engine.start()
        hist = obs.get_registry().get("repro_engine_dispatch_seconds")
        n0 = hist.count_of()
        i0 = _value("repro_engine_interactions_total", gesture="examine")
        engine.handle_input(MouseClick(35.0, 25.0, button="right"))  # computer
        assert hist.count_of() == n0 + 1
        assert _value("repro_engine_interactions_total", gesture="examine") == i0 + 1

    def test_transition_and_binding_counters(self, live, classroom_game):
        engine = classroom_game.new_engine(with_video=False)
        engine.start()
        t0 = _value("repro_engine_transitions_total")
        b0 = _value("repro_engine_bindings_fired_total", trigger=Trigger.CLICK)
        assert engine.fire(Trigger.CLICK, "classroom-go-market")
        assert _value("repro_engine_transitions_total") == t0 + 1
        assert (
            _value("repro_engine_bindings_fired_total", trigger=Trigger.CLICK)
            == b0 + 1
        )

    def test_condition_cache_hit_rate(self, live):
        table = EventTable(
            [
                EventBinding(
                    scenario_id="s1",
                    trigger=Trigger.CLICK,
                    object_id="door",
                    actions=[ShowText(text="creak")],
                ),
                EventBinding(
                    scenario_id="*",
                    trigger=Trigger.CLICK,
                    object_id="door",
                    priority=-1,
                    actions=[ShowText(text="global")],
                ),
            ]
        )
        h0 = _value("repro_engine_condition_cache_hits_total")
        m0 = _value("repro_engine_condition_cache_misses_total")
        first = table.match("s1", Trigger.CLICK, object_id="door")
        again = table.match("s1", Trigger.CLICK, object_id="door")
        assert first == again  # memo returns identical ordering
        assert [b.scenario_id for b in first] == ["s1", "*"]  # local beats global
        assert _value("repro_engine_condition_cache_misses_total") == m0 + 1
        assert _value("repro_engine_condition_cache_hits_total") == h0 + 1
        # Editing the table invalidates the memo.
        table.add(
            EventBinding(
                scenario_id="s1",
                trigger=Trigger.CLICK,
                object_id="door",
                priority=5,
                actions=[ShowText(text="priority")],
            )
        )
        updated = table.match("s1", Trigger.CLICK, object_id="door")
        assert [b.priority for b in updated] == [5, 0, -1]
        assert _value("repro_engine_condition_cache_misses_total") == m0 + 2

    def test_match_semantics_unchanged_by_cache(self, live):
        binding = EventBinding(
            scenario_id="s1",
            trigger=Trigger.CLICK,
            object_id="door",
            once=True,
            actions=[ShowText(text="once")],
        )
        table = EventTable([binding])
        assert table.match("s1", Trigger.CLICK, object_id="door") == [binding]
        # once-exclusion is applied per call, after the structural memo
        assert (
            table.match(
                "s1", Trigger.CLICK, object_id="door",
                exclude_ids={binding.binding_id},
            )
            == []
        )


class TestSessionInstrumentation:
    def test_lifecycle_counters(self, live, classroom_game):
        engine = classroom_game.new_engine(with_video=False)
        s0 = _value("repro_session_started_total")
        a0 = _value("repro_session_active")
        f0 = _value("repro_session_finished_total", outcome="None")
        rec = SessionRecorder(engine.bus, player_id="p1")
        assert _value("repro_session_started_total") == s0 + 1
        assert _value("repro_session_active") == a0 + 1
        rec.finish(duration=1.0, outcome=None, final_score=0, scenarios_visited=1)
        assert _value("repro_session_active") == a0
        assert _value("repro_session_finished_total", outcome="None") == f0 + 1
        # double-finish is idempotent
        rec.finish(duration=1.0, outcome=None, final_score=0, scenarios_visited=1)
        assert _value("repro_session_finished_total", outcome="None") == f0 + 1

    def test_recorder_failure_counted_not_swallowed(self, live, classroom_game):
        """A broken recorder raises SessionError, and the failure is
        visible on the error counter even after bus quarantine eats it."""
        engine = classroom_game.new_engine(with_video=False)
        rec = SessionRecorder(engine.bus, player_id="broken")
        rec.log.topic_counts = None  # sabotage the aggregation step
        e0 = _value("repro_session_errors_total")
        b0 = _value("repro_bus_subscriber_errors_total")
        with pytest.raises(SessionError):
            rec._on_notice(engine.bus.publish("noop", {}))  # direct: raises
        # Published through the bus, the quarantine machinery swallows the
        # raise — but every failure still lands on the counters.
        for _ in range(engine.bus.max_errors):
            engine.bus.publish("interaction", {"gesture": "click"})
        assert rec.error_count >= engine.bus.max_errors
        assert _value("repro_session_errors_total") > e0
        assert _value("repro_bus_subscriber_errors_total") > b0
        q0 = _value("repro_bus_quarantined_total")
        assert q0 >= 1  # the broken recorder was dropped, and counted


class TestNetInstrumentation:
    def test_stream_metrics(self, live, classroom_game):
        reader = VideoReader(classroom_game.container)
        graph = build_graph(
            classroom_game.scenarios, classroom_game.events, classroom_game.start
        )
        sw0 = _value("repro_stream_switches_total")
        by0 = obs.get_registry().get("repro_stream_bytes_fetched_total").total()
        stats = StreamSession(
            reader, graph, Channel(bandwidth_bps=1e5, latency_s=0.1),
            policy="successors",
        ).play_path([("classroom", 5.0), ("market", 5.0), ("classroom", 1.0)])
        assert _value("repro_stream_switches_total") == sw0 + 3
        delta_bytes = (
            obs.get_registry().get("repro_stream_bytes_fetched_total").total() - by0
        )
        assert delta_bytes == stats.bytes_fetched
        hist = obs.get_registry().get("repro_stream_startup_delay_seconds")
        assert hist.count_of() >= 3

    def test_cache_metrics(self, live):
        c0 = _value("repro_cache_hits_total", policy="lru")
        m0 = _value("repro_cache_misses_total", policy="lru")
        cache = SegmentCache(100, policy="lru")
        cache.access(1, 60)
        cache.access(1, 60)
        cache.access(2, 60)  # evicts 1
        assert _value("repro_cache_hits_total", policy="lru") == c0 + 1
        assert _value("repro_cache_misses_total", policy="lru") == m0 + 2
        assert _value("repro_cache_evictions_total", policy="lru") >= 1


class TestParallelInstrumentation:
    def test_diff_signal_records_run(self, live, flat_clip):
        from repro.video.parallel import parallel_difference_signal

        r0 = obs.get_registry().get("repro_parallel_runs_total").total()
        _signal, stats = parallel_difference_signal(flat_clip.frames, max_workers=1)
        assert obs.get_registry().get("repro_parallel_runs_total").total() == r0 + 1
        util = _value("repro_parallel_worker_utilization", kind="diff_signal")
        assert 0.0 < util <= 1.0
        assert stats.workers_used >= 1


class TestDisabledIsInert:
    def test_no_series_recorded_when_disabled(self, classroom_game):
        obs.disable()
        snap_before = obs.snapshot()
        engine = classroom_game.new_engine(with_video=False)
        engine.start()
        engine.handle_input(MouseClick(35.0, 25.0, button="right"))
        engine.tick(0.1)
        assert obs.snapshot() == snap_before
