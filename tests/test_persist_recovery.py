"""Tests for snapshots, compaction, and crash recovery replay."""

import json

import pytest

from repro.persist import (
    Journal,
    PersistenceConfig,
    SnapshotStore,
    WalLayoutError,
    compact_segments,
    compaction_watermark,
    input_record,
    list_segments,
    recover_shard,
    scan_journal,
    snapshot_dir_for,
    start_record,
    state_digest,
)
from repro.persist.records import apply_scripted_op, end_record
from repro.students import cohort_scripts
from repro.video.player import SimulatedClock


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=19)


def _reference_digest(game, script, upto):
    """Digest of a fresh engine after the first ``upto`` scripted ops."""
    engine = game.new_engine(clock=SimulatedClock(0.0), with_video=False)
    engine.start()
    for op in script.ops[:upto]:
        apply_scripted_op(engine, op, script.dt)
    return state_digest(engine.state)


def _log_session(journal, script, upto, end=False):
    journal.append(start_record(script.player_id, script.dt, script.ops))
    for op in script.ops[:upto]:
        journal.append(input_record(script.player_id, op))
    if end:
        journal.append(end_record(script.player_id, "completed"))


class TestScan:
    def test_scan_reads_all_records_in_lsn_order(self, tmp_path, scripts):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        for script in scripts[:2]:
            _log_session(j, script, 3)
        j.sync(timeout=5.0)
        j.close()
        report = scan_journal(tmp_path)
        assert report.torn_records == 0
        lsns = [r["n"] for r in report.records]
        assert lsns == sorted(lsns) and report.tip_lsn == lsns[-1]

    def test_midlog_tear_discards_later_segments(self, tmp_path, scripts):
        config = PersistenceConfig(
            directory=tmp_path, segment_max_bytes=4096, sync_each=True
        )
        j = Journal(tmp_path, config)
        for k in range(120):
            j.append(input_record("s", scripts[0].ops[k % len(scripts[0].ops)]))
        j.close()
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        # Corrupt the MIDDLE segment: everything after it is untrustworthy.
        mid_path = segments[1][1]
        data = bytearray(mid_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        mid_path.write_bytes(bytes(data))
        report = scan_journal(tmp_path, truncate=True)
        assert report.torn_records == 1
        assert report.discarded_bytes > 0
        survivors = list_segments(tmp_path)
        assert [seq for seq, _ in survivors] == [segments[0][0], segments[1][0]]


class TestSnapshots:
    def test_write_load_roundtrip(self, tmp_path, classroom_game, scripts):
        script = scripts[0]
        engine = classroom_game.new_engine(
            clock=SimulatedClock(0.0), with_video=False
        )
        engine.start()
        for op in script.ops[:4]:
            apply_scripted_op(engine, op, script.dt)
        store = SnapshotStore(tmp_path)
        store.write(
            script.player_id, script.dt, script.ops, 4,
            engine.state.to_dict(), lsn=9,
        )
        loaded, rejected = store.load_all()
        assert rejected == 0
        snap = loaded[script.player_id]
        assert snap["cursor"] == 4 and snap["lsn"] == 9
        assert state_digest(snap["state"]) == state_digest(engine.state)

    def test_corrupt_snapshot_rejected(self, tmp_path, classroom_game, scripts):
        script = scripts[0]
        state = classroom_game.new_engine(with_video=False)
        state.start()
        store = SnapshotStore(tmp_path)
        path = store.write(
            script.player_id, script.dt, script.ops, 0,
            state.state.to_dict(), lsn=1,
        )
        doc = json.loads(path.read_text())
        doc["state"]["score"] = 777  # tamper: digest no longer matches
        path.write_text(json.dumps(doc))
        loaded, rejected = store.load_all()
        assert loaded == {} and rejected == 1

    def test_watermark(self):
        assert compaction_watermark([7, 3, 9], tip_lsn=20) == 3
        assert compaction_watermark([], tip_lsn=20) == 20


class TestCompaction:
    def test_drops_only_covered_prefix(self, tmp_path, scripts):
        config = PersistenceConfig(
            directory=tmp_path, segment_max_bytes=4096, sync_each=True
        )
        j = Journal(tmp_path, config)
        for k in range(120):
            j.append(input_record("s", scripts[0].ops[k % len(scripts[0].ops)]))
        j.close()
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        boundary = segments[1][1]
        from repro.persist import segment_first_lsn

        first_of_second = segment_first_lsn(boundary)
        # Watermark just below the second segment: only segment 1 dies.
        dropped = compact_segments(tmp_path, first_of_second - 1)
        assert dropped == 1
        assert [seq for seq, _ in list_segments(tmp_path)] == [
            seq for seq, _ in segments[1:]
        ]
        # The active (last) segment survives even a tip-high watermark.
        dropped = compact_segments(tmp_path, 10**9)
        assert list_segments(tmp_path)[-1][0] == segments[-1][0]

    def test_recovery_after_compaction(
        self, tmp_path, classroom_game, scripts
    ):
        """A session whose start record was compacted away still recovers
        (the snapshot carries state + ops + cursor)."""
        config = PersistenceConfig(
            directory=tmp_path, segment_max_bytes=4096, sync_each=True
        )
        script = scripts[1]
        j = Journal(tmp_path, config)
        _log_session(j, script, 3)
        engine = classroom_game.new_engine(
            clock=SimulatedClock(0.0), with_video=False
        )
        engine.start()
        for op in script.ops[:3]:
            apply_scripted_op(engine, op, script.dt)
        store = SnapshotStore(snapshot_dir_for(tmp_path))
        store.write(
            script.player_id, script.dt, script.ops, 3,
            engine.state.to_dict(), lsn=j.durable_lsn,
        )
        # Push enough filler to rotate the start record's segment out.
        for k in range(120):
            j.append(input_record("filler", script.ops[k % len(script.ops)]))
        j.append(end_record("filler", "completed"))
        j.close()
        assert compact_segments(tmp_path, j.durable_lsn) >= 1

        report = recover_shard(tmp_path, classroom_game)
        by_id = {s.player_id: s for s in report.sessions}
        assert script.player_id in by_id
        recovered = by_id[script.player_id]
        assert recovered.cursor == 3
        assert recovered.digest == _reference_digest(classroom_game, script, 3)


class TestRecovery:
    def test_rebuilds_bit_identical_sessions(
        self, tmp_path, classroom_game, scripts
    ):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        upto = {}
        for i, script in enumerate(scripts):
            upto[script.player_id] = min(2 + i, len(script.ops))
            _log_session(j, script, upto[script.player_id])
        j.sync(timeout=5.0)
        j.close()

        report = recover_shard(tmp_path, classroom_game)
        assert len(report.sessions) == len(scripts)
        assert report.ended_sessions == 0
        for session in report.sessions:
            script = next(
                s for s in scripts if s.player_id == session.player_id
            )
            n = upto[session.player_id]
            assert session.cursor == n
            assert session.digest == _reference_digest(classroom_game, script, n)

    def test_ended_sessions_not_rebuilt(self, tmp_path, classroom_game, scripts):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        _log_session(j, scripts[0], len(scripts[0].ops), end=True)
        _log_session(j, scripts[1], 2)
        j.sync(timeout=5.0)
        j.close()
        report = recover_shard(tmp_path, classroom_game)
        assert report.ended_sessions == 1
        assert [s.player_id for s in report.sessions] == [scripts[1].player_id]

    def test_recovery_writes_fresh_snapshots(
        self, tmp_path, classroom_game, scripts
    ):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        _log_session(j, scripts[0], 3)
        j.sync(timeout=5.0)
        j.close()
        recover_shard(tmp_path, classroom_game)
        store = SnapshotStore(snapshot_dir_for(tmp_path))
        loaded, _rejected = store.load_all()
        assert scripts[0].player_id in loaded

    def test_recovered_sessions_resume_to_reference_end(
        self, tmp_path, classroom_game, scripts
    ):
        """Stepping a recovered session forward matches a never-crashed run."""
        script = scripts[2]
        cut = len(script.ops) // 2
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        _log_session(j, script, cut)
        j.sync(timeout=5.0)
        j.close()
        report = recover_shard(tmp_path, classroom_game)
        (session,) = report.sessions
        engine = session.engine
        for op in script.ops[cut:]:
            apply_scripted_op(engine, op, script.dt)
        assert state_digest(engine.state) == _reference_digest(
            classroom_game, script, len(script.ops)
        )

    def test_empty_journal_dir_is_refused(self, tmp_path, classroom_game):
        # an existing-but-empty directory is a layout error (wrong
        # path, most likely), not a zero-session recovery; the genuine
        # fresh start is a directory that does not exist yet
        with pytest.raises(WalLayoutError, match="empty layout"):
            recover_shard(tmp_path, classroom_game)
        report = recover_shard(tmp_path / "fresh", classroom_game)
        assert report.sessions == [] and report.ended_sessions == 0
