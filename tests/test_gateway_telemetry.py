"""HTTP tests for the gateway's live telemetry endpoint."""

import asyncio
import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayServer,
    GatewayThread,
    TelemetryServer,
)
from repro.serve import ServeConfig, SessionManager
from repro.students import cohort_scripts


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    obs.reset()
    yield obs
    obs.reset()
    obs.set_enabled(was)


@pytest.fixture
def gateway(classroom_game, live):
    """A loopback gateway with telemetry bound on an ephemeral port."""
    manager = SessionManager(ServeConfig(
        n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50,
    ))
    server = GatewayServer(manager, classroom_game, config=GatewayConfig(
        telemetry_port=0,
        telemetry_sample_interval_s=0.05,
        trace_sample=1.0,
    ))
    with GatewayThread(server) as handle:
        yield handle


def _get(port, path, timeout=10):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    )


def _get_json(port, path):
    with _get(port, path) as resp:
        assert resp.headers["Content-Type"] == "application/json"
        return json.loads(resp.read())


def _run_session(handle, game, player_id):
    script = cohort_scripts(game, 1, seed=41)[0]

    async def drive():
        async with GatewayClient(handle.host, handle.port) as client:
            await client.submit(player_id, script.ops, dt=script.dt)
            return await client.wait_end(player_id, timeout=30.0)

    return asyncio.run(drive())


class TestEndpoints:
    def test_healthz_reports_serving_state(self, gateway):
        health = _get_json(gateway.telemetry_port, "/healthz")
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert health["obs_enabled"] is True
        assert health["in_flight"] == 0

    def test_metrics_serves_prometheus_text(self, gateway, classroom_game):
        _run_session(gateway, classroom_game, "tel-metrics#0")
        with _get(gateway.telemetry_port, "/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode()
        assert "# TYPE repro_gateway_sessions_total counter" in body
        assert "repro_trace_phase_seconds" in body

    def test_trace_timeline_roundtrip(self, gateway, classroom_game):
        end = _run_session(gateway, classroom_game, "tel-trace#0")
        trace_id = end["trace"]  # server-side sampling stamped it
        timeline = _get_json(gateway.telemetry_port, f"/trace/{trace_id}")
        assert timeline["trace_id"] == trace_id
        assert timeline["status"] == "ok"
        phases = [p["phase"] for p in timeline["phases"]]
        assert phases == [
            "accept", "queue_wait", "shard_step", "fsync_wait", "flush",
        ]
        assert timeline["total_s"] == pytest.approx(
            sum(p["duration_s"] for p in timeline["phases"]), rel=1e-6
        )
        listing = _get_json(gateway.telemetry_port, "/traces")
        assert trace_id in listing["finished"]

    def test_unknown_trace_is_404(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(gateway.telemetry_port, "/trace/deadbeef00000000")
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"] == "unknown trace"

    def test_history_accumulates_ring_samples(self, gateway):
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            samples = _get_json(gateway.telemetry_port, "/history")["samples"]
            if len(samples) >= 2:
                break
            time.sleep(0.05)
        assert len(samples) >= 2, "sampler task appended no ring history"
        assert all("t" in s and "values" in s for s in samples)

    def test_unknown_path_is_404(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(gateway.telemetry_port, "/nope")
        assert err.value.code == 404

    def test_non_get_method_is_405(self, gateway):
        req = urllib.request.Request(
            f"http://127.0.0.1:{gateway.telemetry_port}/metrics",
            data=b"x", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 405

    def test_malformed_request_line_is_400(self, gateway):
        with socket.create_connection(
            ("127.0.0.1", gateway.telemetry_port), timeout=10
        ) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_requests_counted_by_route(self, gateway):
        _get(gateway.telemetry_port, "/healthz").close()
        _get(gateway.telemetry_port, "/healthz").close()
        metric = obs.get_registry().get(
            "repro_gateway_telemetry_requests_total"
        )
        assert metric.value(route="healthz") >= 2


class TestLifecycle:
    def test_port_property_requires_listening(self):
        server = TelemetryServer(gateway=None)
        with pytest.raises(RuntimeError):
            server.port

    def test_rejects_bad_sample_interval(self):
        with pytest.raises(ValueError):
            TelemetryServer(gateway=None, sample_interval_s=0.0)

    def test_config_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            GatewayConfig(telemetry_sample_interval_s=0.0)

    def test_config_rejects_bad_trace_sample(self):
        with pytest.raises(ValueError):
            GatewayConfig(trace_sample=1.5)

    def test_telemetry_disabled_by_default(self, classroom_game, live):
        manager = SessionManager(ServeConfig(
            n_shards=1, tick_interval_s=0.002, max_steps_per_tick=50,
        ))
        server = GatewayServer(manager, classroom_game)
        with GatewayThread(server) as handle:
            assert handle.telemetry_port is None
