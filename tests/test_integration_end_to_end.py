"""End-to-end integration: the full paper workflow in one test module.

Footage → authoring tool → validation → compile → streamed delivery →
interactive play on different devices → session analytics → package.
"""

import numpy as np

from repro.core import load_project, save_project, solve
from repro.graph import build_graph
from repro.learning import (
    DeliveryPoint,
    KnowledgeItem,
    KnowledgeMap,
    load_package,
    save_package,
)
from repro.net import Channel, StreamSession, make_device
from repro.runtime import MouseClick, MouseDrag, SessionRecorder
from repro.students import sample_profile, simulate_play
from repro.video import FrameSize, VideoReader

SIZE = FrameSize(80, 60)


class TestFullWorkflow:
    def test_author_save_load_play_package(self, tmp_path, classroom_wizard):
        # 1. validate + build
        report = classroom_wizard.check()
        assert report.ok and report.winnable
        game = classroom_wizard.build()

        # 2. project persistence round-trip
        save_project(classroom_wizard.project, tmp_path / "proj")
        reloaded = load_project(tmp_path / "proj").compile()
        assert solve(reloaded).winnable

        # 3. play interactively to the win
        eng = game.new_engine()
        eng.start()
        rec = SessionRecorder(eng.bus, "student-1")
        for move in [
            MouseClick(*_center(game, "classroom", "classroom-go-market")),
            MouseDrag(*_center(game, "market", "ram"), 5, eng.layout.inv_y + 2),
            MouseClick(*_center(game, "market", "market-go-classroom")),
            MouseClick(eng.layout.inv_x + 2, eng.layout.inv_y + 2),
            MouseClick(*_center(game, "classroom", "computer")),
        ]:
            eng.handle_input(move)
        assert eng.state.outcome == "won"
        log = rec.finish(eng.state.play_time, eng.state.outcome,
                         eng.state.score, len(eng.state.visited))
        assert log.final_score == 20
        assert log.gesture_counts["use_item"] == 1

        # 4. package for delivery, reload, play headlessly
        save_package(game, tmp_path / "pkg", knowledge_items={"k": "t"})
        pkg = load_package(tmp_path / "pkg")
        eng2 = pkg.game.new_engine(with_video=False)
        eng2.start()
        assert eng2.running

    def test_streamed_play_path_from_solver(self, classroom_game):
        """The solver's winning script defines the streamed visit path."""
        result = solve(classroom_game)
        path = [(classroom_game.start, 10.0)]
        # Re-derive the scenario visits from switch moves.
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        from repro.core.solver import _apply

        for move in result.winning_script:
            before = eng.state.current_scenario
            _apply(eng, move)
            if eng.state.current_scenario != before:
                path.append((eng.state.current_scenario, 8.0))
        reader = VideoReader(classroom_game.container)
        graph = build_graph(classroom_game.scenarios, classroom_game.events,
                            classroom_game.start)
        stats = StreamSession(reader, graph, Channel(500_000, 0.05),
                              policy="successors").play_path(path)
        assert len(stats.switches) == len(path)
        assert stats.mean_startup_delay < 2.0

    def test_device_driven_session(self, classroom_game):
        """A remote-control user completes the same quest."""
        rng = np.random.default_rng(4)
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        remote = make_device("remote")

        def do(plan):
            for ev in plan.events:
                eng.handle_input(ev)

        do(remote.activate(eng.scenarios["classroom"], "classroom-go-market", rng))
        assert eng.state.current_scenario == "market"
        do(remote.drag_to_inventory(eng.scenarios["market"], "ram",
                                    eng.layout.inv_y + 2, rng))
        assert eng.state.inventory.has("ram")
        do(remote.activate(eng.scenarios["market"], "market-go-classroom", rng))
        eng.state.inventory.select("ram")
        do(remote.activate(eng.scenarios["classroom"], "computer", rng))
        assert eng.state.outcome == "won"

    def test_simulated_students_generate_analytics(self, classroom_game):
        kmap = KnowledgeMap()
        kmap.add(KnowledgeItem("k1", "fact"),
                 [DeliveryPoint(kind="enter", ref="market")])
        rng = np.random.default_rng(0)
        profile = sample_profile("s1", rng, archetype="achiever")
        res = simulate_play(classroom_game, profile, rng)
        exposures = kmap.exposures_from_session(
            res.entered_scenarios, res.fired_bindings,
            res.examined_objects, res.dialogue_nodes,
        )
        if res.completed:
            assert exposures == {"k1": False}


class TestScaleSanity:
    def test_bigger_games_still_validate(self):
        from repro.core import fetch_quest_game

        wiz = fetch_quest_game(n_quests=6, size=SIZE)
        report = wiz.check()
        assert report.ok and report.winnable
        g = build_graph(wiz.project.scenarios, wiz.project.events,
                        wiz.project.start_scenario)
        assert g.node_count == 7
        assert g.branching_factor() > 0.9

    def test_solver_scales_with_state_space(self):
        from repro.core import fetch_quest_game

        small = solve(fetch_quest_game(n_quests=1, size=SIZE).build())
        large = solve(fetch_quest_game(n_quests=3, size=SIZE).build())
        assert small.winnable and large.winnable
        assert large.states_explored >= small.states_explored


def _center(game, scenario_id, object_id):
    return game.scenarios[scenario_id].get_object(object_id).hotspot.center()
