"""Tests for save slots, autosave, and the adaptive hint advisor."""

import json

import pytest

from repro.core.solver import _apply, solve
from repro.runtime import (
    AUTOSAVE_SLOT,
    AutosavePolicy,
    GameState,
    HintAdvisor,
    HintError,
    MouseClick,
    SaveError,
    SaveManager,
)


class TestSaveManager:
    def test_save_load_roundtrip(self, tmp_path, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        eng.state.inventory.add("ram", name="RAM")
        eng.state.set_flag("met-teacher", True)
        eng.state.add_score(7)
        mgr = SaveManager(tmp_path, classroom_game.title)
        mgr.save("slot1", eng.state, saved_at=10.0)
        loaded = mgr.load("slot1")
        assert loaded.to_dict() == eng.state.to_dict()

    def test_slot_name_validation(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        with pytest.raises(SaveError):
            mgr.save("Bad Slot!", GameState("classroom"))

    def test_missing_slot(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        with pytest.raises(SaveError):
            mgr.load("ghost")

    def test_wrong_game_rejected(self, tmp_path, classroom_game):
        mgr_a = SaveManager(tmp_path, "Game A")
        mgr_a.save("s", GameState("classroom"))
        mgr_b = SaveManager(tmp_path, "Game B")
        with pytest.raises(SaveError):
            mgr_b.load("s")
        # ... and Game B's slot listing hides Game A's saves.
        assert mgr_b.slots() == []

    def test_corruption_detected(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        mgr.save("s", GameState("classroom"))
        path = tmp_path / "s.save.json"
        doc = json.loads(path.read_text())
        doc["state"]["score"] = 99999  # tamper
        path.write_text(json.dumps(doc))
        with pytest.raises(SaveError):
            mgr.load("s")

    def test_partial_write_leaves_old_save_intact(
        self, tmp_path, classroom_game, monkeypatch
    ):
        """A crash mid-save must never corrupt the previous save.

        ``save()`` goes through a temp file + ``os.replace``; we inject a
        failure between the partial write and the rename and assert the
        slot still loads the *old* state and no temp litter remains.
        """
        import os as _os

        mgr = SaveManager(tmp_path, classroom_game.title)
        old = GameState("classroom")
        old.add_score(3)
        mgr.save("s", old, saved_at=1.0)

        new = GameState("classroom")
        new.add_score(99)

        def die_before_rename(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(_os, "replace", die_before_rename)
        with pytest.raises(OSError):
            mgr.save("s", new, saved_at=2.0)
        monkeypatch.undo()

        loaded = mgr.load("s")
        assert loaded.score == 3  # the old save survived, bit-intact
        assert list(tmp_path.glob("*.tmp")) == []

    def test_slots_sorted_newest_first(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        mgr.save("old", GameState("classroom"), saved_at=1.0)
        mgr.save("new", GameState("classroom"), saved_at=2.0)
        assert [s.slot for s in mgr.slots()] == ["new", "old"]

    def test_delete(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        mgr.save("s", GameState("classroom"))
        assert mgr.delete("s")
        assert not mgr.delete("s")

    def test_resume_engine_switches_video(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        # Save a state parked in the market.
        donor = classroom_game.new_engine(with_video=False)
        donor.start()
        donor.state.switch_to("market")
        mgr.save("s", donor.state)
        # Resume into a fresh engine with video.
        eng = classroom_game.new_engine()
        eng.start()
        mgr.resume_engine("s", eng)
        assert eng.state.current_scenario == "market"
        assert eng.player.current_segment == eng.scenarios["market"].segment_ref

    def test_resumed_session_still_winnable(self, tmp_path, classroom_game):
        mgr = SaveManager(tmp_path, classroom_game.title)
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        script = solve(classroom_game).winning_script
        _apply(eng, script[0])
        _apply(eng, script[1])
        mgr.save("mid", eng.state)
        eng2 = classroom_game.new_engine(with_video=False)
        eng2.start()
        mgr.resume_engine("mid", eng2)
        for move in script[2:]:
            _apply(eng2, move)
        assert eng2.state.outcome == "won"


class TestAutosave:
    def test_autosave_on_scenario_switch(self, tmp_path, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        mgr = SaveManager(tmp_path, classroom_game.title)
        policy = AutosavePolicy(mgr, eng, min_interval=0.0)
        x, y = classroom_game.scenarios["classroom"].get_object(
            "classroom-go-market").hotspot.center()
        eng.handle_input(MouseClick(x, y))
        assert policy.saves_written == 1
        assert mgr.load(AUTOSAVE_SLOT).current_scenario == "market"

    def test_rate_limiting(self, tmp_path, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        mgr = SaveManager(tmp_path, classroom_game.title)
        policy = AutosavePolicy(mgr, eng, min_interval=1000.0)
        go = classroom_game.scenarios["classroom"].get_object(
            "classroom-go-market").hotspot.center()
        back = classroom_game.scenarios["market"].get_object(
            "market-go-classroom").hotspot.center()
        eng.handle_input(MouseClick(*go))
        eng.handle_input(MouseClick(*back))
        eng.handle_input(MouseClick(*go))
        assert policy.saves_written == 1  # only the first, then throttled


class TestHintAdvisor:
    def test_escalation_levels(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        advisor = HintAdvisor(classroom_game)
        h0 = advisor.hint(eng.state, level=0)
        h2 = advisor.hint(eng.state, level=2)
        assert "market" in h0.text
        assert "Do this:" in h2.text
        assert h0.moves_remaining == h2.moves_remaining == 4

    def test_hint_progresses_with_play(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        advisor = HintAdvisor(classroom_game)
        script = solve(classroom_game).winning_script
        remaining = []
        for move in script:
            remaining.append(advisor.hint(eng.state).moves_remaining)
            _apply(eng, move)
        assert remaining == [4, 3, 2, 1]

    def test_local_step_phrasing(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        script = solve(classroom_game).winning_script
        _apply(eng, script[0])  # now in the market, next step is take
        advisor = HintAdvisor(classroom_game)
        h1 = advisor.hint(eng.state, level=1)
        assert "picking up" in h1.text

    def test_won_state(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        for move in solve(classroom_game).winning_script:
            _apply(eng, move)
        advisor = HintAdvisor(classroom_game)
        assert advisor.hint(eng.state).moves_remaining == 0

    def test_unwinnable_state_raises(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        eng.state.end("lost")
        advisor = HintAdvisor(classroom_game)
        with pytest.raises(HintError):
            advisor.hint(eng.state)

    def test_level_clamped(self, classroom_game):
        eng = classroom_game.new_engine(with_video=False)
        eng.start()
        advisor = HintAdvisor(classroom_game)
        assert advisor.hint(eng.state, level=99).level == 2
        assert advisor.hint(eng.state, level=-5).level == 0
