"""Seeded chaos soaks: inject faults, kill, recover, prove bit-identity.

Each test runs the full gateway -> serve -> persist stack under one
built-in fault plan via :func:`repro.faultline.chaos.run_chaos` and
holds the run to the durability contract: every scheduled fault fired
exactly its scheduled count, no WAL record was orphaned, and every
recovered (or completed) session's SHA-256 state digest equals an
independent reference replay.
"""

import pytest

from repro import faultline, obs
from repro.faultline.chaos import run_chaos


@pytest.fixture
def live():
    was = obs.enabled()
    obs.enable()
    yield obs
    obs.set_enabled(was)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faultline.uninstall()
    yield
    faultline.uninstall()


def _assert_contract(report):
    """The invariants every chaos run must close on."""
    assert report.submit_failures == 0, report.to_dict()
    assert report.orphan_records == 0, report.to_dict()
    assert report.all_faults_fired, report.faults
    assert report.digests_checked > 0
    assert report.digest_mismatches == [], report.digest_mismatches
    assert report.bit_identical
    assert report.ok
    # the obs integration saw exactly what the injector fired
    assert report.injected_total == sum(
        row["fired"] for row in report.faults
    )


class TestSeededSoaks:
    def test_fsync_stall_recovery_is_bit_identical(self, live):
        report = run_chaos("fsync-stall", seed=2007, sessions=12)
        _assert_contract(report)
        # both scheduled stalls fired, and only those
        assert report.injected_total == 2

    def test_torn_tail_is_truncated_and_replay_matches(self, live):
        report = run_chaos("torn-tail", seed=2007, sessions=12)
        _assert_contract(report)
        # the injected tear really reached the disk and recovery
        # discarded exactly that tail
        assert report.torn_records >= 1

    def test_disconnect_mid_submit_rides_the_retry_path(self, live):
        report = run_chaos("disconnect-mid-submit", seed=2007, sessions=12)
        _assert_contract(report)
        # the drop killed the connection, yet every offered session
        # still landed (reconnect + resume, duplicate acks tolerated)
        assert report.submitted == 12

    def test_ci_smoke_covers_every_site(self, live):
        report = run_chaos("ci-smoke", seed=2007, sessions=16)
        _assert_contract(report)
        assert {row["site"] for row in report.faults} == {
            "gateway.accept", "gateway.frame", "wal.write",
            "wal.fsync", "serve.tick", "serve.admit",
        }

    def test_same_seed_same_schedule(self, live):
        a = run_chaos("torn-tail", seed=7, sessions=8)
        b = run_chaos("torn-tail", seed=7, sessions=8)
        assert a.faults == b.faults


class TestDurabilityTimeout:
    def test_fsync_timeout_surfaces_via_counter(self, live):
        """A 0.6s fsync stall outlives a 50ms durability budget: the END
        is still delivered (and still bit-identical), but the miss is
        counted instead of silently reported as durable."""
        before = obs.get_registry().get(
            "repro_persist_durability_timeout_total"
        ).total()
        report = run_chaos(
            "fsync-timeout", seed=2007, sessions=8, wait_for=4,
            trace_sample=1.0, durable_wait_s=0.05,
        )
        _assert_contract(report)
        assert report.durability_timeouts >= 1
        after = obs.get_registry().get(
            "repro_persist_durability_timeout_total"
        ).total()
        assert after - before == report.durability_timeouts

    def test_patient_wait_sees_no_timeouts(self, live):
        """Same stall, durable-wait budget longer than it: no misses."""
        report = run_chaos(
            "fsync-timeout", seed=2007, sessions=8, wait_for=4,
            trace_sample=1.0, durable_wait_s=5.0,
        )
        _assert_contract(report)
        assert report.durability_timeouts == 0
