"""Tests for structured logging: levels, filtering, trace correlation."""

import json

import pytest

from repro import obs
from repro.obs import logging as olog


@pytest.fixture
def obs_on():
    """Obs enabled with clean logging/flight/tracer state; restores all."""
    was = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    olog.reset_logging()
    yield
    obs.reset()
    olog.reset_logging()
    obs.set_enabled(was)


@pytest.fixture
def captured(obs_on):
    """A list sink receiving every record that passes its level."""
    records = []
    sink = olog.add_log_sink(records.append)
    yield records
    olog.remove_log_sink(sink)


class TestRecordShape:
    def test_basic_fields(self, captured):
        log = olog.get_logger("t.shape")
        log.info("game.start", scenario="classroom", score=0)
        assert len(captured) == 1
        rec = captured[0]
        assert rec["level"] == "info"
        assert rec["logger"] == "t.shape"
        assert rec["event"] == "game.start"
        assert rec["fields"] == {"scenario": "classroom", "score": 0}
        assert isinstance(rec["ts"], float)
        assert isinstance(rec["mono"], float)

    def test_no_fields_key_when_empty(self, captured):
        olog.get_logger("t.shape").warning("bare")
        assert "fields" not in captured[0]

    def test_all_four_levels(self, captured):
        log = olog.get_logger("t.levels")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r["level"] for r in captured] == [
            "debug", "info", "warning", "error",
        ]

    def test_get_logger_idempotent(self, obs_on):
        assert olog.get_logger("t.same") is olog.get_logger("t.same")

    def test_records_are_json_serialisable(self, captured):
        olog.get_logger("t.json").info("evt", n=3, name="x")
        json.dumps(captured[0])  # must not raise


class TestLevelFiltering:
    def test_sink_filtered_flight_is_not(self, captured):
        olog.set_log_level("warning")
        log = olog.get_logger("t.filter")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        assert [r["event"] for r in captured] == ["loud"]
        # The flight recorder retains full verbosity regardless.
        flight_events = [e["event"] for e in obs.get_flight_recorder().events()]
        assert flight_events == ["quiet", "quiet", "loud"]

    def test_dotted_prefix_override(self, captured):
        olog.set_log_level("error")
        olog.set_log_level("debug", "net")
        olog.get_logger("net.cache").debug("cache.evict")
        olog.get_logger("engine").debug("input.dispatch")
        olog.get_logger("engine").error("boom")
        assert [r["event"] for r in captured] == ["cache.evict", "boom"]

    def test_longest_prefix_wins(self, captured):
        olog.set_log_level("debug", "net")
        olog.set_log_level("error", "net.cache")
        olog.get_logger("net.cache").info("hidden")
        olog.get_logger("net.stream").info("shown")
        assert [r["event"] for r in captured] == ["shown"]

    def test_unknown_level_rejected(self, obs_on):
        with pytest.raises(ValueError, match="unknown log level"):
            olog.set_log_level("loud")

    def test_events_counter_counts_passing_only(self, captured):
        olog.set_log_level("warning")
        log = olog.get_logger("t.count")
        log.debug("x")
        log.warning("y")
        counter = obs.get_registry().counter("repro_log_events_total")
        assert counter.value(level="warning") == 1
        assert counter.value(level="debug") == 0


class TestTraceCorrelation:
    def test_ids_stamped_inside_span(self, captured):
        log = olog.get_logger("t.trace")
        with obs.span("outer") as sp:
            log.info("inside")
        log.info("outside")
        inside, outside = captured
        assert inside["trace_id"] == sp.trace_id
        assert inside["span_id"] == sp.span_id
        assert "trace_id" not in outside

    def test_nested_span_ids(self, captured):
        log = olog.get_logger("t.trace")
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                log.info("deep")
        rec = captured[0]
        assert rec["trace_id"] == outer.trace_id == inner.trace_id
        assert rec["span_id"] == inner.span_id


class TestSampling:
    def test_sample_zero_drops_everything(self, captured):
        log = olog.get_logger("t.sample")
        for _ in range(50):
            log.debug("never", sample=0.0)
        assert captured == []

    def test_sample_one_keeps_everything(self, captured):
        log = olog.get_logger("t.sample")
        for _ in range(50):
            log.debug("always", sample=1.0)
        assert len(captured) == 50

    def test_fractional_sample_thins(self, captured):
        log = olog.get_logger("t.sample")
        for _ in range(400):
            log.debug("some", sample=0.25)
        # Deterministic RNG: roughly a quarter survive, never all or none.
        assert 0 < len(captured) < 400


class TestDisabled:
    def test_disabled_logging_is_a_no_op(self, obs_on):
        records = []
        sink = olog.add_log_sink(records.append)
        try:
            obs.set_enabled(False)
            log = olog.get_logger("t.off")
            log.error("invisible", big="payload")
            assert records == []
            assert len(obs.get_flight_recorder()) == 0
        finally:
            obs.set_enabled(True)
            olog.remove_log_sink(sink)


class TestSinks:
    def test_file_sink_writes_jsonl(self, obs_on, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = olog.add_log_file(path)
        try:
            log = olog.get_logger("t.file")
            log.info("one", a=1)
            log.warning("two")
        finally:
            olog.remove_log_sink(sink)
            sink.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["one", "two"]
        assert records[0]["fields"] == {"a": 1}

    def test_raising_sink_is_swallowed_and_counted(self, obs_on):
        def bad_sink(record):
            raise RuntimeError("sink died")

        olog.add_log_sink(bad_sink)
        try:
            olog.get_logger("t.bad").info("survives")
        finally:
            olog.remove_log_sink(bad_sink)
        errors = obs.get_registry().counter("repro_log_sink_errors_total")
        assert errors.total() == 1

    def test_remove_sink_returns_false_when_absent(self, obs_on):
        assert olog.remove_log_sink(lambda r: None) is False


class TestReset:
    def test_obs_reset_clears_flight_and_active_span_state(self, captured):
        log = olog.get_logger("t.reset")
        with obs.span("outer"):
            log.info("before")
            obs.reset()
            # The reset cleared the active span: later records must not
            # carry the stale trace id.
            log.info("after")
        events = obs.get_flight_recorder().events()
        assert [e["event"] for e in events] == ["after"]
        assert "trace_id" not in events[0]
        # The stale outer span was not recorded on exit either.
        assert obs.get_tracer().finished == []

    def test_spans_work_normally_after_interleaved_reset(self, captured):
        log = olog.get_logger("t.reset")
        with obs.span("doomed"):
            obs.reset()
        with obs.span("fresh") as sp:
            log.info("ok")
        assert [s.name for s in obs.get_tracer().finished] == ["fresh"]
        assert captured[-1]["trace_id"] == sp.trace_id

    def test_obs_reset_clears_time_series_ring(self, obs_on):
        ring = obs.get_ring()
        ring.sample()
        ring.sample()
        assert len(ring) == 2
        obs.reset()
        assert len(ring) == 0
        assert ring.samples() == []

    def test_obs_reset_clears_request_traces(self, obs_on):
        store = obs.get_trace_store()
        assert store.start("reset-open", player="p1")
        assert store.start("reset-done", player="p2")
        store.mark("reset-done", "accept")
        store.finish("reset-done")
        obs.reset()
        assert store.open_count == 0
        assert store.finished_count == 0
        assert store.get("reset-open") is None
        assert store.get("reset-done") is None
        # the ids are reusable again after the wipe
        assert store.start("reset-open")
        # and the wipe itself counted no orphans
        orphans = obs.get_registry().get("repro_trace_orphaned_total")
        assert orphans.total() == 0

    def test_attribution_works_normally_after_interleaved_reset(self, obs_on):
        store = obs.get_trace_store()
        store.start("interleaved")
        obs.reset()
        store.mark("interleaved", "accept")  # stale id: cheap no-op
        assert store.finish("interleaved") is None
        assert store.start("post-reset", player="p")
        store.mark("post-reset", "flush")
        assert store.finish("post-reset").status == "ok"


class TestFormatEvent:
    def test_format_contains_parts(self, obs_on):
        record = {
            "ts": 1_700_000_000.123,
            "level": "warning",
            "logger": "net.cache",
            "event": "cache.refetch",
            "fields": {"segment": 3},
            "trace_id": "aabbccddeeff0011",
            "span_id": "1122334455667788",
        }
        line = olog.format_event(record)
        assert "WARNING" in line
        assert "net.cache" in line
        assert "cache.refetch" in line
        assert "segment=3" in line
        assert "trace=aabbccdd" in line
        assert "span=11223344" in line

    def test_format_handles_missing_keys(self, obs_on):
        line = olog.format_event({})
        assert "--:--:--" in line
