"""Tests for Bayesian knowledge tracing and teacher reports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning import (
    BktParams,
    DeliveryPoint,
    KnowledgeItem,
    KnowledgeMap,
    MasteryTracker,
    OutcomeRecord,
    class_report,
    curriculum_report,
)


def _kmap(n=3):
    m = KnowledgeMap()
    for k in range(n):
        m.add(KnowledgeItem(f"k{k}", f"fact {k}", objective=f"obj-{k}"),
              [DeliveryPoint(kind="enter", ref="r")])
    return m


class TestBktParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            BktParams(p_init=1.5)
        with pytest.raises(ValueError):
            BktParams(p_slip=0.6, p_guess=0.5)  # degeneracy guard

    def test_defaults_sane(self):
        p = BktParams()
        assert p.p_slip + p.p_guess < 1.0


class TestMasteryTracker:
    def test_initial_prior(self):
        t = MasteryTracker(_kmap(), BktParams(p_init=0.2))
        assert t.p_known("k0") == pytest.approx(0.2)
        assert t.mean_mastery() == pytest.approx(0.2)

    def test_correct_raises_incorrect_lowers(self):
        t = MasteryTracker(_kmap())
        base = t.p_known("k0")
        up = t.observe("k0", True)
        assert up > base
        t2 = MasteryTracker(_kmap())
        down_then_learn = t2.observe("k0", False)
        # An incorrect answer lowers the Bayes posterior; the learning
        # transition then adds a bit back, but it must stay below the
        # correct-answer path.
        assert down_then_learn < up

    def test_repeated_correct_converges_to_one(self):
        t = MasteryTracker(_kmap())
        for _ in range(12):
            t.observe("k0", True)
        assert t.p_known("k0") > 0.99
        assert "k0" in t.mastered()

    def test_practice_monotone(self):
        t = MasteryTracker(_kmap())
        values = [t.practice("k1") for _ in range(5)]
        assert values == sorted(values)
        assert values[-1] < 1.0

    def test_unknown_item(self):
        t = MasteryTracker(_kmap())
        with pytest.raises(KeyError):
            t.p_known("ghost")

    def test_observe_session_active_counts_double(self):
        a = MasteryTracker(_kmap())
        b = MasteryTracker(_kmap())
        a.observe_session({"k0": True})    # active exposure
        b.observe_session({"k0": False})   # passive exposure
        assert a.p_known("k0") > b.p_known("k0")

    def test_observe_session_ignores_unknown_items(self):
        t = MasteryTracker(_kmap())
        t.observe_session({"ghost": True}, answers={"ghost": True})  # no raise

    def test_expected_correct_bounds(self):
        t = MasteryTracker(_kmap())
        p0 = t.expected_correct("k0")
        for _ in range(10):
            t.observe("k0", True)
        p1 = t.expected_correct("k0")
        assert 0.0 <= p0 < p1 <= 1.0
        assert p1 <= 1.0 - BktParams().p_slip + 1e-9

    def test_per_item_params(self):
        fast = BktParams(p_learn=0.9)
        t = MasteryTracker(_kmap(), per_item_params={"k0": fast})
        t.practice("k0")
        t.practice("k1")
        assert t.p_known("k0") > t.p_known("k1")

    @given(seq=st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_posterior_stays_probability(self, seq):
        """Property: the posterior is always a valid probability."""
        t = MasteryTracker(_kmap(1))
        for correct in seq:
            p = t.observe("k0", correct)
            assert 0.0 <= p <= 1.0


class TestReports:
    def _records(self):
        return [
            OutcomeRecord(player_id="amy", platform="vgbl", time_on_task=300,
                          completed=True, dropped_out=False, interactions=40,
                          knowledge_gain=0.6, final_engagement=0.9, score=30),
            OutcomeRecord(player_id="ben", platform="vgbl", time_on_task=120,
                          completed=False, dropped_out=True, interactions=9,
                          knowledge_gain=0.1, final_engagement=0.1, score=5),
        ]

    def test_class_report_contents(self):
        kmap = _kmap()
        strong = MasteryTracker(kmap)
        for k in range(3):
            for _ in range(8):
                strong.observe(f"k{k}", True)
        weak = MasteryTracker(kmap)
        report = class_report(self._records(),
                              {"amy": strong, "ben": weak}, mastery_bar=0.6)
        assert "CLASS REPORT" in report
        assert "amy" in report and "ben" in report
        assert "dropped out): ben" in report
        assert "mastery < 60%): ben" in report
        assert "amy" not in report.split("NEEDS ATTENTION")[1]

    def test_class_report_without_mastery(self):
        report = class_report(self._records())
        assert "mastery" not in report.splitlines()[2]

    def test_class_report_requires_records(self):
        with pytest.raises(ValueError):
            class_report([])

    def test_curriculum_report_flags_weak_items(self):
        kmap = _kmap(2)
        t1, t2 = MasteryTracker(kmap), MasteryTracker(kmap)
        for _ in range(8):
            t1.observe("k0", True)
            t2.observe("k0", True)
        report = curriculum_report(kmap, [t1, t2], weak_bar=0.5)
        assert "CURRICULUM REPORT" in report
        assert "WEAKLY TAUGHT" in report
        assert "k1" in report.split("WEAKLY TAUGHT")[1]
        assert "k0" not in report.split("WEAKLY TAUGHT")[1]

    def test_curriculum_report_requires_trackers(self):
        with pytest.raises(ValueError):
            curriculum_report(_kmap(), [])
