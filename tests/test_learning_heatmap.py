"""Tests for interaction heatmaps and the wizard's approach helper."""

import numpy as np
import pytest

from repro.learning import ClickHeatmap, collect_heatmaps, render_heatmap_overlay
from repro.runtime import KeyPress, MouseClick, MouseDrag, SessionRecorder
from repro.video import Frame, FrameSize


def _logs_for(game, click_points, n_sessions=2):
    logs = []
    for _ in range(n_sessions):
        eng = game.new_engine(with_video=False)
        rec = SessionRecorder(eng.bus, "p")
        eng.start()
        for (x, y) in click_points:
            eng.handle_input(MouseClick(x, y))
            eng.handle_input(MouseClick(1, 1))  # dismiss any popup
        logs.append(rec.finish(10.0, None, 0, 1))
    return logs


class TestCollectHeatmaps:
    def test_clicks_counted_per_scenario(self, classroom_game):
        size = FrameSize(80, 60)
        logs = _logs_for(classroom_game, [(40, 30), (40, 30), (41, 31)])
        maps = collect_heatmaps(logs, size, cell=8)
        assert "classroom" in maps
        hm = maps["classroom"]
        # 3 aimed clicks + 3 dismiss clicks per session x 2 sessions.
        assert hm.total_clicks == 12
        # The aimed cluster (all three points share the 8px cell at 40,30)
        # holds exactly half the clicks.
        assert hm.counts[30 // 8, 40 // 8] == 6
        # The dismiss corner holds the other half.
        assert hm.counts[0, 0] == 6

    def test_drag_origins_counted(self, classroom_game):
        size = FrameSize(80, 60)
        eng = classroom_game.new_engine(with_video=False)
        rec = SessionRecorder(eng.bus, "p")
        eng.start()
        eng.handle_input(MouseDrag(20, 20, 70, 55))
        eng.handle_input(KeyPress("left"))  # no coordinates: ignored
        log = rec.finish(1.0, None, 0, 1)
        maps = collect_heatmaps([log], size, cell=10)
        assert maps["classroom"].total_clicks == 1

    def test_out_of_frame_clicks_clamped(self, classroom_game):
        size = FrameSize(80, 60)
        logs = _logs_for(classroom_game, [(500.0, -10.0)], n_sessions=1)
        maps = collect_heatmaps(logs, size, cell=8)
        assert maps["classroom"].counts.sum() == pytest.approx(
            maps["classroom"].total_clicks
        )

    def test_cell_validation(self, classroom_game):
        with pytest.raises(ValueError):
            collect_heatmaps([], FrameSize(10, 10), cell=0)

    def test_density_normalised(self):
        counts = np.zeros((4, 4))
        counts[1, 2] = 8
        counts[0, 0] = 2
        hm = ClickHeatmap("s", counts, cell=8, total_clicks=10)
        d = hm.density()
        assert d.max() == 1.0
        assert d[0, 0] == pytest.approx(0.25)

    def test_density_empty(self):
        hm = ClickHeatmap("s", np.zeros((2, 2)), cell=8, total_clicks=0)
        assert (hm.density() == 0).all()


class TestRenderOverlay:
    def test_hot_cells_reddened_cold_untouched(self):
        base = Frame.blank(FrameSize(32, 32), (0, 80, 0))
        counts = np.zeros((4, 4))
        counts[0, 0] = 10
        hm = ClickHeatmap("s", counts, cell=8, total_clicks=10)
        out = render_heatmap_overlay(base, hm, max_opacity=0.5)
        assert out.data[2, 2, 0] > 100          # hot cell pushed red
        assert (out.data[20, 20] == (0, 80, 0)).all()  # cold untouched

    def test_opacity_validation(self):
        base = Frame.blank(FrameSize(8, 8))
        hm = ClickHeatmap("s", np.zeros((1, 1)), cell=8, total_clicks=0)
        with pytest.raises(ValueError):
            render_heatmap_overlay(base, hm, max_opacity=0.0)


class TestWizardApproach:
    def test_on_approach_binding_fires(self):
        from repro.core import GameWizard
        from repro.core.templates import scene_footage

        size = FrameSize(80, 60)
        wiz = (
            GameWizard("Walkabout")
            .scene("yard", "Yard", scene_footage(size, 1, duration=4))
            .prop("yard", "statue", "Statue", at=(40, 20, 16, 16),
                  description="a statue")
            .on_approach("yard", "statue", "The statue towers over you.")
        )
        game = wiz.build(require_valid=False)
        eng = game.new_engine(with_video=False)
        eng.start()
        # Walk the avatar up into the statue's hotspot.
        eng.state.avatar_xy = (47.0, 40.0)
        for _ in range(4):
            eng.handle_input(KeyPress("up"))
        assert any(p.content == "The statue towers over you."
                   for p in eng.state.popups)

    def test_on_approach_is_novice(self):
        from repro.core import GameWizard
        from repro.core.templates import scene_footage

        size = FrameSize(80, 60)
        wiz = (
            GameWizard("W")
            .scene("yard", "Yard", scene_footage(size, 1, duration=4))
            .prop("yard", "statue", "Statue", at=(40, 20, 16, 16),
                  description="d")
            .on_approach("yard", "statue", "text")
        )
        assert wiz.ledger.report().max_skill_required == "novice"
