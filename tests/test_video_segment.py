"""Tests for segments and timelines (repro.video.segment)."""

import pytest

from repro.video import Frame, FrameSize, SegmentError, Timeline, VideoSegment, segments_from_boundaries

SIZE = FrameSize(10, 8)


def _seg(name, n, shade=100):
    return VideoSegment(
        name=name, frames=[Frame.blank(SIZE, (shade, shade, shade))] * n
    )


class TestVideoSegment:
    def test_basic_properties(self):
        s = _seg("a", 5)
        assert s.frame_count == 5
        assert s.size == SIZE
        assert s.duration_seconds(10.0) == pytest.approx(0.5)

    def test_requires_name_and_frames(self):
        with pytest.raises(SegmentError):
            VideoSegment(name="", frames=[Frame.blank(SIZE)])
        with pytest.raises(SegmentError):
            VideoSegment(name="x", frames=[])

    def test_rejects_mixed_sizes(self):
        with pytest.raises(SegmentError):
            VideoSegment(
                name="x",
                frames=[Frame.blank(SIZE), Frame.blank(FrameSize(5, 5))],
            )

    def test_trim(self):
        s = _seg("a", 6)
        t = s.trim(2, 5)
        assert t.frame_count == 3
        assert t.name == "a[2:5]"

    def test_trim_tracks_source_span(self):
        s = VideoSegment(name="a", frames=[Frame.blank(SIZE)] * 6,
                         source="movie", source_span=(10, 16))
        t = s.trim(2, 4)
        assert t.source_span == (12, 14)

    def test_trim_bounds(self):
        s = _seg("a", 4)
        with pytest.raises(SegmentError):
            s.trim(2, 2)
        with pytest.raises(SegmentError):
            s.trim(0, 9)

    def test_split(self):
        a, b = _seg("x", 6).split(2)
        assert a.frame_count == 2 and b.frame_count == 4
        assert a.name != b.name

    def test_split_interior_only(self):
        with pytest.raises(SegmentError):
            _seg("x", 4).split(0)
        with pytest.raises(SegmentError):
            _seg("x", 4).split(4)

    def test_concat(self):
        c = _seg("a", 2).concat(_seg("b", 3))
        assert c.frame_count == 5

    def test_concat_size_mismatch(self):
        other = VideoSegment(name="o", frames=[Frame.blank(FrameSize(4, 4))])
        with pytest.raises(SegmentError):
            _seg("a", 2).concat(other)

    def test_bad_fps(self):
        with pytest.raises(SegmentError):
            _seg("a", 2).duration_seconds(0)


class TestSegmentsFromBoundaries:
    def test_basic_cutting(self):
        frames = [Frame.blank(SIZE)] * 10
        segs = segments_from_boundaries(frames, [3, 7], name_prefix="sc")
        assert [s.frame_count for s in segs] == [3, 4, 3]
        assert [s.name for s in segs] == ["sc-000", "sc-001", "sc-002"]
        assert segs[1].source_span == (3, 7)

    def test_ignores_out_of_range_and_duplicates(self):
        frames = [Frame.blank(SIZE)] * 6
        segs = segments_from_boundaries(frames, [0, 3, 3, 6, 99])
        assert [s.frame_count for s in segs] == [3, 3]

    def test_no_boundaries_single_segment(self):
        frames = [Frame.blank(SIZE)] * 4
        segs = segments_from_boundaries(frames, [])
        assert len(segs) == 1 and segs[0].frame_count == 4

    def test_empty_frames_rejected(self):
        with pytest.raises(SegmentError):
            segments_from_boundaries([], [1])


class TestTimeline:
    def _tl(self):
        return Timeline([_seg("a", 4), _seg("b", 3), _seg("c", 5)])

    def test_iteration_and_lookup(self):
        tl = self._tl()
        assert len(tl) == 3
        assert tl.names == ["a", "b", "c"]
        assert tl.total_frames == 12
        assert tl.get("b").frame_count == 3
        assert tl.index_of("c") == 2

    def test_unique_names_enforced(self):
        with pytest.raises(SegmentError):
            Timeline([_seg("a", 2), _seg("a", 2)])
        tl = self._tl()
        with pytest.raises(SegmentError):
            tl.append(_seg("a", 1))

    def test_append_size_check(self):
        tl = self._tl()
        with pytest.raises(SegmentError):
            tl.append(VideoSegment(name="z", frames=[Frame.blank(FrameSize(4, 4))]))

    def test_remove(self):
        tl = self._tl()
        removed = tl.remove("b")
        assert removed.name == "b"
        assert tl.names == ["a", "c"]
        with pytest.raises(SegmentError):
            tl.remove("b")

    def test_rename(self):
        tl = self._tl()
        tl.rename("b", "middle")
        assert tl.names == ["a", "middle", "c"]
        with pytest.raises(SegmentError):
            tl.rename("a", "c")  # collision
        with pytest.raises(SegmentError):
            tl.rename("a", "")

    def test_move(self):
        tl = self._tl()
        tl.move("c", 0)
        assert tl.names == ["c", "a", "b"]
        with pytest.raises(SegmentError):
            tl.move("a", 9)

    def test_merge_adjacent(self):
        tl = self._tl()
        name = tl.merge("a", "b", name="ab")
        assert name == "ab"
        assert tl.names == ["ab", "c"]
        assert tl.get("ab").frame_count == 7

    def test_merge_non_adjacent_rejected(self):
        tl = self._tl()
        with pytest.raises(SegmentError):
            tl.merge("a", "c")

    def test_split(self):
        tl = self._tl()
        a, b = tl.split("c", 2)
        assert tl.names == ["a", "b", a, b]
        assert tl.get(a).frame_count == 2
        assert tl.get(b).frame_count == 3

    def test_as_frame_lists(self):
        tl = self._tl()
        lists = tl.as_frame_lists()
        assert [len(fl) for fl in lists] == [4, 3, 5]
