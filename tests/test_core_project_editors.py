"""Tests for the project model and the two §4 editors."""

import pytest

from repro.core import (
    AuthoringLedger,
    GameProject,
    ObjectEditor,
    ProjectError,
    ScenarioEditor,
)
from repro.core.templates import scene_footage
from repro.events import ShowText, Trigger
from repro.objects import RectHotspot
from repro.runtime import Dialogue
from repro.video import FrameSize, VideoSegment

SIZE = FrameSize(48, 36)


def _project_with_scene():
    ledger = AuthoringLedger()
    project = GameProject("T")
    se = ScenarioEditor(project, ledger)
    oe = ObjectEditor(project, ledger)
    se.import_footage("clip", scene_footage(SIZE, 1, duration=5))
    se.commit_whole("clip")
    se.create_scenario("room", "Room", "clip")
    return project, se, oe, ledger


class TestGameProject:
    def test_title_required(self):
        with pytest.raises(ProjectError):
            GameProject("")

    def test_footage_size_locking(self):
        p = GameProject("T")
        p.import_footage("a", scene_footage(SIZE, 1, duration=3))
        with pytest.raises(ProjectError):
            p.import_footage("b", scene_footage(FrameSize(20, 20), 1, duration=3))

    def test_duplicate_footage_rejected(self):
        p = GameProject("T")
        p.import_footage("a", scene_footage(SIZE, 1, duration=3))
        with pytest.raises(ProjectError):
            p.import_footage("a", scene_footage(SIZE, 2, duration=3))

    def test_segment_ref_lookup(self):
        p = GameProject("T")
        p.commit_segment(VideoSegment(name="s0", frames=scene_footage(SIZE, 1, duration=3)))
        assert p.segment_ref("s0") == 0
        with pytest.raises(ProjectError):
            p.segment_ref("nope")

    def test_scenario_requires_committed_segment(self):
        from repro.graph import Scenario

        p = GameProject("T")
        with pytest.raises(ProjectError):
            p.add_scenario(Scenario("s", "S", 0))

    def test_first_scenario_becomes_start(self):
        project, *_ = _project_with_scene()
        assert project.start_scenario == "room"

    def test_compile_requirements(self):
        p = GameProject("T")
        with pytest.raises(ProjectError):
            p.compile()

    def test_compile_produces_playable(self):
        project, se, oe, _ = _project_with_scene()
        game = project.compile()
        eng = game.new_engine()
        eng.start()
        assert eng.current_scenario.scenario_id == "room"

    def test_find_object(self):
        project, se, oe, _ = _project_with_scene()
        oe.place_image("room", "thing", "Thing", RectHotspot(1, 1, 5, 5))
        sid, obj = project.find_object("thing")
        assert sid == "room" and obj.name == "Thing"
        with pytest.raises(ProjectError):
            project.find_object("ghost")


class TestScenarioEditor:
    def test_auto_segment_and_commit(self):
        import numpy as np

        from repro.video import generate_clip, random_shot_script

        rng = np.random.default_rng(2)
        clip = generate_clip(
            SIZE, random_shot_script(3, rng, size=SIZE, min_duration=8, max_duration=10),
            seed=2,
        )
        project = GameProject("T")
        se = ScenarioEditor(project)
        se.import_footage("movie", clip.frames)
        tl = se.auto_segment("movie")
        assert len(tl) == 3
        refs = se.commit("movie")
        assert sorted(refs.values()) == [0, 1, 2]
        assert "movie" not in se.proposals

    def test_parallel_auto_segment_same_result(self):
        import numpy as np

        from repro.video import generate_clip, random_shot_script

        rng = np.random.default_rng(3)
        clip = generate_clip(
            SIZE, random_shot_script(3, rng, size=SIZE, min_duration=8, max_duration=10),
            seed=3,
        )
        p1, p2 = GameProject("A"), GameProject("B")
        s1, s2 = ScenarioEditor(p1), ScenarioEditor(p2)
        s1.import_footage("m", clip.frames)
        s2.import_footage("m", clip.frames)
        t1 = s1.auto_segment("m")
        t2 = s2.auto_segment("m", parallel_workers=2)
        assert [s.frame_count for s in t1] == [s.frame_count for s in t2]

    def test_proposal_adjustments(self):
        import numpy as np

        from repro.video import generate_clip, random_shot_script

        rng = np.random.default_rng(4)
        clip = generate_clip(
            SIZE, random_shot_script(2, rng, size=SIZE, min_duration=8, max_duration=10),
            seed=4,
        )
        project = GameProject("T")
        se = ScenarioEditor(project)
        se.import_footage("m", clip.frames)
        tl = se.auto_segment("m")
        a, b = tl.names
        se.rename_segment("m", a, "intro")
        merged = se.merge_segments("m", "intro", b)
        names = se.split_segment("m", merged, 4)
        se.drop_segment("m", names[1])
        refs = se.commit("m")
        assert len(refs) == 1

    def test_commit_requires_proposal(self):
        project, se, *_ = _project_with_scene()
        with pytest.raises(ProjectError):
            se.commit("never-imported")

    def test_set_start(self):
        project, se, oe, _ = _project_with_scene()
        se.import_footage("clip2", scene_footage(SIZE, 2, duration=5))
        se.commit_whole("clip2")
        se.create_scenario("room2", "Room 2", "clip2")
        se.set_start("room2")
        assert project.start_scenario == "room2"


class TestObjectEditor:
    def test_placement_kinds_and_ledger(self):
        project, se, oe, ledger = _project_with_scene()
        before = len(ledger)
        oe.place_image("room", "img", "Img", RectHotspot(0, 0, 4, 4))
        oe.place_button("room", "btn", "Go", RectHotspot(5, 0, 8, 4))
        oe.place_item("room", "itm", "Item", RectHotspot(10, 0, 4, 4))
        oe.place_npc("room", "npc", "Guide", RectHotspot(15, 0, 4, 8),
                     dialogue=Dialogue.linear("dlg-x", ["Hi"]))
        oe.place_reward("room", "rwd", "Badge", RectHotspot(20, 0, 4, 4))
        oe.place_text("room", "txt", "hello", RectHotspot(25, 0, 6, 4))
        oe.place_weblink("room", "web", "Docs", "https://x/y", RectHotspot(31, 0, 6, 4))
        assert project.object_count == 7
        assert "dlg-x" in project.dialogues
        assert len(ledger) > before

    def test_global_id_uniqueness(self):
        project, se, oe, _ = _project_with_scene()
        se.import_footage("clip2", scene_footage(SIZE, 2, duration=5))
        se.commit_whole("clip2")
        se.create_scenario("room2", "Room 2", "clip2")
        oe.place_image("room", "thing", "A", RectHotspot(0, 0, 4, 4))
        with pytest.raises(ProjectError):
            oe.place_image("room2", "thing", "B", RectHotspot(0, 0, 4, 4))

    def test_property_and_description(self):
        project, se, oe, _ = _project_with_scene()
        oe.place_image("room", "pc", "PC", RectHotspot(0, 0, 4, 4))
        oe.set_property("pc", "state", "broken")
        oe.set_description("pc", "A beige box.")
        oe.set_z_order("pc", 7)
        _, obj = project.find_object("pc")
        assert obj.properties.get("state") == "broken"
        assert obj.description == "A beige box."
        assert obj.z_order == 7

    def test_link_scenes_creates_button_and_edge(self):
        project, se, oe, _ = _project_with_scene()
        se.import_footage("clip2", scene_footage(SIZE, 2, duration=5))
        se.commit_whole("clip2")
        se.create_scenario("room2", "Room 2", "clip2")
        oe.link_scenes("room", "room2", "Go")
        g = project.graph()
        assert g.successors("room") == ["room2"]

    def test_link_to_unknown_scene(self):
        project, se, oe, _ = _project_with_scene()
        with pytest.raises(ProjectError):
            oe.link_scenes("room", "mars", "Go")

    def test_fetch_puzzle_bindings(self):
        project, se, oe, _ = _project_with_scene()
        oe.place_image("room", "machine", "Machine", RectHotspot(0, 0, 8, 8))
        oe.place_item("room", "part", "Part", RectHotspot(10, 10, 4, 4))
        oe.place_item("room", "junk", "Junk", RectHotspot(20, 10, 4, 4))
        oe.fetch_puzzle(
            target_scenario="room", target_object="machine", item_id="part",
            success_text="Done!", end_outcome="won", wrong_items=["junk"],
        )
        use = [b for b in project.events if b.trigger == Trigger.USE_ITEM]
        assert len(use) == 2
        right = next(b for b in use if b.item_id == "part")
        assert right.once
        assert any(a.kind == "end_game" for a in right.actions)
        wrong = next(b for b in use if b.item_id == "junk")
        assert not wrong.once

    def test_bind_skill_charged(self):
        project, se, oe, ledger = _project_with_scene()
        oe.place_image("room", "pc", "PC", RectHotspot(0, 0, 4, 4))
        oe.bind("room", Trigger.CLICK, object_id="pc",
                actions=[ShowText(text="x")])
        report = ledger.report()
        assert report.ops_by_skill.get("editor", 0) >= 1
