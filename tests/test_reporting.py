"""Tests for the reporting layer: TUI screenshots and tables."""

import pytest

from repro.reporting import (
    Canvas,
    ExperimentRecord,
    format_table,
    frame_to_ascii,
    records_to_markdown,
    render_authoring_screenshot,
    render_runtime_screenshot,
)
from repro.video import Frame, FrameSize


class TestCanvas:
    def test_text_clipping(self):
        c = Canvas(10, 3)
        c.text(8, 1, "hello")
        out = c.render().splitlines()
        assert out[1].endswith("he")

    def test_box_with_title(self):
        c = Canvas(20, 5)
        c.box(0, 0, 20, 5, title="Panel")
        out = c.render()
        assert "+ Panel " in out.splitlines()[0].replace("-", "+", 1) or "Panel" in out

    def test_out_of_bounds_put_ignored(self):
        c = Canvas(5, 5)
        c.put(99, 99, "#")  # no crash
        assert "#" not in c.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            Canvas(0, 5)


class TestFrameToAscii:
    def test_shape(self):
        f = Frame.blank(FrameSize(40, 30), (128, 128, 128))
        art = frame_to_ascii(f, 20, 10)
        assert len(art) == 10
        assert all(len(line) == 20 for line in art)

    def test_dark_vs_light(self):
        dark = frame_to_ascii(Frame.blank(FrameSize(8, 8), (0, 0, 0)), 4, 4)
        light = frame_to_ascii(Frame.blank(FrameSize(8, 8), (255, 255, 255)), 4, 4)
        assert dark[0][0] == " "
        assert light[0][0] == "@"

    def test_gradient_monotone(self):
        f = Frame.from_gradient(FrameSize(8, 32), (0, 0, 0), (255, 255, 255))
        art = frame_to_ascii(f, 4, 8)
        ramp = " .:-=+*#%@"
        levels = [ramp.index(line[0]) for line in art]
        assert levels == sorted(levels)

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_to_ascii(Frame.blank(FrameSize(4, 4)), 0, 4)


class TestScreenshots:
    def test_fig1_contains_tool_panels(self, classroom_wizard):
        shot = render_authoring_screenshot(classroom_wizard.project)
        for needle in ("Authoring Tool", "Video canvas", "Scenarios",
                       "Object palette", "Properties", "Events",
                       "Segments (auto-cut)", "classroom"):
            assert needle in shot, f"missing {needle!r}"

    def test_fig1_selected_scenario(self, classroom_wizard):
        shot = render_authoring_screenshot(
            classroom_wizard.project, selected_scenario="market"
        )
        assert "*market" in shot

    def test_fig1_deterministic(self, classroom_wizard):
        a = render_authoring_screenshot(classroom_wizard.project)
        b = render_authoring_screenshot(classroom_wizard.project)
        assert a == b

    def test_fig2_contains_runtime_chrome(self, classroom_game):
        eng = classroom_game.new_engine()
        eng.start()
        shot = render_runtime_screenshot(eng)
        for needle in ("VGBL Player", "Inventory window", "score: 0",
                       "Classroom", "(empty backpack)"):
            assert needle in shot, f"missing {needle!r}"

    def test_fig2_shows_inventory_and_popup(self, classroom_game):
        eng = classroom_game.new_engine()
        eng.start()
        eng.state.inventory.add("ram", name="RAM module")
        eng.state.push_popup("text", "The computer boots!", 0.0)
        shot = render_runtime_screenshot(eng)
        assert "[RAM module]" in shot
        assert "[TEXT] The computer boots!" in shot

    def test_fig2_object_markers(self, classroom_game):
        eng = classroom_game.new_engine()
        eng.start()
        shot = render_runtime_screenshot(eng)
        assert "<Computer>" in shot
        assert "[To market]" in shot


class TestTables:
    ROWS = [
        {"name": "a", "value": 1.23456, "n": 10},
        {"name": "bb", "value": 2.0, "n": 5},
    ]

    def test_alignment_and_header(self):
        out = format_table(self.ROWS)
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len({len(line) for line in lines[:3]}) == 1  # aligned widths

    def test_column_selection(self):
        out = format_table(self.ROWS, columns=["n", "name"])
        assert out.splitlines()[0].startswith("n")
        assert "value" not in out

    def test_title_and_empty(self):
        assert format_table([], title="T").startswith("T")
        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        out = format_table(self.ROWS)
        assert "1.235" in out  # 4 significant digits


class TestExperimentRecords:
    def test_verdict_validation(self):
        with pytest.raises(ValueError):
            ExperimentRecord("E1", "claim", "measured", "maybe")

    def test_markdown(self):
        records = [
            ExperimentRecord("E1 / Fig. 1", "tool exists", "rendered", "reproduced"),
            ExperimentRecord("E6", "games engage more", "gain 0.5 vs 0.1",
                             "shape-reproduced"),
        ]
        md = records_to_markdown(records)
        assert md.count("|") > 8
        assert "shape-reproduced" in md
