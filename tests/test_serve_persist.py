"""Kill-and-recover tests for the durable serving layer."""

import time

import pytest

from repro.persist import PersistenceConfig, scan_journal, state_digest
from repro.persist.records import apply_scripted_op
from repro.serve import ServeConfig, SessionManager, session_factory_for_script
from repro.students import cohort_scripts
from repro.video.player import SimulatedClock


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 6, seed=31)


def _submit_cohort(manager, game, scripts, copies=2):
    factories = {
        s.player_id: session_factory_for_script(game, s) for s in scripts
    }
    sids = []
    for k in range(copies):
        for script in scripts:
            sid = f"{script.player_id}#{k}"
            assert manager.submit(sid, factories[script.player_id])
            sids.append(sid)
    return sids


def _script_for(scripts, sid):
    return next(s for s in scripts if sid.startswith(s.player_id + "#"))


def _reference_digest(game, script, upto):
    engine = game.new_engine(clock=SimulatedClock(0.0), with_video=False)
    engine.start()
    for op in script.ops[:upto]:
        apply_scripted_op(engine, op, script.dt)
    return state_digest(engine.state)


class TestKillAndRecover:
    def test_hard_stop_mid_flight_recovers_bit_identical(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(
            directory=tmp_path, snapshot_every=3, group_window_s=0.001
        )
        config = ServeConfig(
            n_shards=2, tick_interval_s=0.02, max_steps_per_tick=1,
            persistence=persistence,
        )

        # Phase 1: run a cohort, then kill the manager mid-flight
        # (discard shutdown = the orderly part of a crash; the torn
        # tail below is the disorderly part).
        manager = SessionManager(config).start()
        _submit_cohort(manager, classroom_game, scripts)
        time.sleep(0.2)  # a few committed steps, nobody finished
        manager.shutdown(drain=False)
        assert manager.completed_sessions < len(scripts) * 2

        # ... and the record that was mid-write when the power died:
        shard_dir = persistence.shard_dir(0)
        segment = sorted(shard_dir.glob("wal-*.log"))[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\x30\x00\x00\x00\x01\x02 torn mid-frame")

        # Phase 2: a fresh manager recovers from the same directory.
        manager2 = SessionManager(config)
        reports = manager2.recover(classroom_game)
        live = [s for r in reports for s in r.sessions]
        assert live, "expected in-flight sessions to recover"
        assert sum(r.torn_records for r in reports) == 1

        identical = 0
        for session in live:
            script = _script_for(scripts, session.player_id)
            if session.digest == _reference_digest(
                classroom_game, script, session.cursor
            ):
                identical += 1
        assert identical / len(live) >= 0.99

        # Phase 3: the recovered sessions resume stepping to the end.
        manager2.start()
        assert manager2.drain(timeout=60.0)
        manager2.shutdown()
        completed_before = manager.completed_sessions
        assert manager2.completed_sessions == len(live)
        assert completed_before + len(live) + sum(
            r.ended_sessions for r in reports
        ) >= len(scripts) * 2

        # After the drained shutdown the journals are clean again.
        for i in range(config.n_shards):
            report = scan_journal(persistence.shard_dir(i))
            assert report.torn_records == 0

    def test_drained_shutdown_leaves_no_live_sessions(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(directory=tmp_path)
        config = ServeConfig(
            n_shards=2, tick_interval_s=0.001, max_steps_per_tick=50,
            persistence=persistence,
        )
        with SessionManager(config) as manager:
            _submit_cohort(manager, classroom_game, scripts, copies=1)
            assert manager.drain(timeout=60.0)
        # Every session start has a matching end on disk; recovery of a
        # cleanly drained journal rebuilds nothing.
        manager2 = SessionManager(config)
        reports = manager2.recover(classroom_game)
        assert sum(len(r.sessions) for r in reports) == 0
        assert sum(r.ended_sessions for r in reports) == len(scripts)
        assert sum(r.torn_records for r in reports) == 0

    def test_discard_shutdown_closes_journals_cleanly(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(directory=tmp_path)
        config = ServeConfig(
            n_shards=2, tick_interval_s=0.05, max_steps_per_tick=1,
            persistence=persistence,
        )
        manager = SessionManager(config).start()
        _submit_cohort(manager, classroom_game, scripts)
        time.sleep(0.1)
        manager.shutdown(drain=False)  # discard the backlog...
        for i in range(config.n_shards):
            shard_dir = persistence.shard_dir(i)
            if shard_dir.is_dir():
                # ... but the journal was flushed and closed, not torn.
                assert scan_journal(shard_dir).torn_records == 0

    def test_recover_guards(self, tmp_path, classroom_game):
        with pytest.raises(RuntimeError):
            SessionManager(ServeConfig(n_shards=1)).recover(classroom_game)
        config = ServeConfig(
            n_shards=1,
            persistence=PersistenceConfig(directory=tmp_path),
        )
        manager = SessionManager(config).start()
        with pytest.raises(RuntimeError):
            manager.recover(classroom_game)
        manager.shutdown()

    def test_without_persistence_nothing_is_written(
        self, tmp_path, classroom_game, scripts
    ):
        config = ServeConfig(n_shards=2, tick_interval_s=0.001,
                             max_steps_per_tick=50)
        with SessionManager(config) as manager:
            _submit_cohort(manager, classroom_game, scripts, copies=1)
            assert manager.drain(timeout=60.0)
        assert list(tmp_path.iterdir()) == []
