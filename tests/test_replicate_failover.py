"""Failover tests: heartbeat detection, promotion, the chaos cycle."""

import socket
import time

import pytest

from repro.faultline.chaos import reference_digest
from repro.persist import (
    PersistenceConfig,
    scan_journal,
    state_digest,
)
from repro.persist.records import REC_FENCE, ops_from_dicts
from repro.replicate import (
    Promoter,
    R_ERROR,
    R_HANDSHAKE,
    ReplicationSource,
    StandbyReplica,
    promote_directory,
    read_epoch,
    run_repl_chaos,
)
from repro.replicate.protocol import encode, make_decoder
from repro.serve import ServeConfig, SessionManager, session_factory_for_script
from repro.students import cohort_scripts

N_SHARDS = 2


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=29)


def _manager(persistence, **kwargs):
    kwargs.setdefault("n_shards", N_SHARDS)
    kwargs.setdefault("tick_interval_s", 0.003)
    kwargs.setdefault("max_steps_per_tick", 8)
    return SessionManager(ServeConfig(persistence=persistence, **kwargs))


def _submit_all(manager, game, scripts, suffix="f"):
    sids = []
    for k, script in enumerate(scripts):
        sid = f"{script.player_id}#{suffix}{k}"
        assert manager.submit(sid, session_factory_for_script(game, script))
        sids.append(sid)
    return sids


def _primary_tips(persistence, n_shards=N_SHARDS):
    return {
        i: scan_journal(persistence.shard_dir(i), truncate=False).tip_lsn
        for i in range(n_shards)
        if persistence.shard_dir(i).is_dir()
    }


class TestHeartbeatDetection:
    def test_unreachable_primary_is_promotable(self, tmp_path, classroom_game):
        # never connected: heartbeat_age is infinite, promotion fires
        standby = StandbyReplica(tmp_path, classroom_game, 1,
                                 "127.0.0.1", 1)  # nobody listens there
        assert standby.heartbeat_age() == float("inf")
        assert Promoter(standby, heartbeat_timeout_s=60).should_promote()

    def test_live_heartbeats_hold_promotion_back(
        self, tmp_path, classroom_game
    ):
        persistence = PersistenceConfig(directory=tmp_path / "primary")
        for shard in range(N_SHARDS):
            persistence.shard_dir(shard).mkdir(parents=True)
        with ReplicationSource(
            persistence, N_SHARDS, heartbeat_s=0.02,
        ) as source:
            standby = StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ).start()
            try:
                promoter = Promoter(standby, heartbeat_timeout_s=0.5)
                deadline = time.monotonic() + 5
                while (standby.heartbeat_age() == float("inf")
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert standby.heartbeat_age() < 0.5
                assert not promoter.should_promote()
                assert not promoter.wait_for_failure(timeout_s=0.15)
            finally:
                standby.stop()
        # the source is gone: silence crosses the threshold and the
        # failure wait returns promptly
        promoter = Promoter(standby, heartbeat_timeout_s=0.05)
        assert promoter.wait_for_failure(timeout_s=5)


class TestPromotion:
    def test_kill_primary_promotes_bit_identical(
        self, tmp_path, classroom_game, scripts
    ):
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence, tick_interval_s=0.01,
                           max_steps_per_tick=1)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            standby = StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ).start()
            _submit_all(manager, classroom_game, scripts)
            time.sleep(0.15)  # some progress; nobody finishes
            manager.shutdown(drain=False)  # the primary dies
            tips = _primary_tips(persistence)
            assert standby.wait_caught_up(tips, timeout_s=10)

        promoter = Promoter(standby, heartbeat_timeout_s=0.1)
        assert promoter.wait_for_failure(timeout_s=5)
        in_memory = standby.digests()
        report = promoter.promote(game=classroom_game)

        # epochs fenced on disk and in the log
        for shard in range(N_SHARDS):
            shard_dir = tmp_path / "standby" / f"shard-{shard:02d}"
            assert read_epoch(shard_dir) == 2
            records = scan_journal(shard_dir).records
            fences = [r for r in records if r.get("t") == REC_FENCE]
            assert [f["epoch"] for f in fences] == [2]
        assert report.epochs == {0: 2, 1: 2}

        # recovery from the promoted log lands on the very states the
        # standby was holding in memory (live sessions only)
        assert report.digests
        for sid, digest in report.digests.items():
            assert in_memory[sid] == digest

        # and those states equal an independent from-scratch replay
        for st in standby.shard_states():
            for sid, sess in st.sessions.items():
                assert state_digest(sess.engine.state) == reference_digest(
                    classroom_game, ops_from_dicts(sess.ops),
                    sess.dt, sess.cursor,
                )

        # the promoted root is an ordinary persistence directory: a
        # fresh manager resumes the survivors and drains them
        resumed = SessionManager(ServeConfig(
            n_shards=N_SHARDS, tick_interval_s=0.002,
            max_steps_per_tick=50,
            persistence=PersistenceConfig(
                directory=tmp_path / "standby",
                snapshot_every=0, compact=False,
            ),
        ))
        reports = resumed.recover(classroom_game)
        live = sum(len(r.sessions) for r in reports)
        assert live > 0
        resumed.start()
        assert resumed.drain(timeout=30)
        resumed.shutdown(drain=False)
        assert resumed.completed_sessions == live

    def test_promotion_races_inflight_primary_safely(
        self, tmp_path, classroom_game, scripts
    ):
        # promote the standby while the primary is still appending and
        # its clients still wait on durability: the standby must cut a
        # consistent (commit-gated) state, and the deposed primary's
        # source must be fenced by the new epoch
        persistence = PersistenceConfig(
            directory=tmp_path / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = _manager(persistence, tick_interval_s=0.01,
                           max_steps_per_tick=1, durable_wait_s=2.0)
        with ReplicationSource(persistence, N_SHARDS) as source:
            source.attach(manager)
            manager.start()
            standby = StandbyReplica(
                tmp_path / "standby", classroom_game, N_SHARDS,
                source.host, source.port,
            ).start()
            _submit_all(manager, classroom_game, scripts)
            time.sleep(0.1)  # streaming is mid-flight on every shard

            report = Promoter(standby).promote(game=classroom_game)
            assert report.epochs == {0: 2, 1: 2}
            # whatever point the cut landed on, it is bit-identical
            for st in standby.shard_states():
                for sid, sess in st.sessions.items():
                    assert state_digest(sess.engine.state) == (
                        reference_digest(
                            classroom_game, ops_from_dicts(sess.ops),
                            sess.dt, sess.cursor,
                        )
                    )

            # the primary itself is unaffected: its sessions drain
            assert manager.drain(timeout=30)

            # ... but its source is now deposed: a peer at the promoted
            # epoch is refused instead of shipped to
            with socket.create_connection(
                (source.host, source.port), timeout=5
            ) as conn:
                conn.sendall(encode(R_HANDSHAKE, {
                    "shard": 0, "epoch": report.epochs[0], "start": 1,
                }))
                decoder = make_decoder()
                frames = []
                while not frames:
                    frames = decoder.feed(conn.recv(65536))
                ftype, payload = frames[0]
            assert ftype == R_ERROR
            assert payload["code"] == "fenced"
            manager.shutdown(drain=False)

    def test_truncates_uncommitted_tail(self, tmp_path, classroom_game,
                                        scripts):
        # records shipped but never covered by a COMMIT must not
        # survive promotion — they were not durable on the primary's
        # terms
        from repro.persist.records import input_record, start_record

        script = scripts[0]
        standby = StandbyReplica(tmp_path, classroom_game, 1,
                                 "127.0.0.1", 0)
        st = standby.shard_states()[0]
        standby._handle_handshake(st, {"shard": 0, "epoch": 1, "start": 1})
        records = [dict(start_record("p#0", script.dt, script.ops), n=1)]
        for i, op in enumerate(script.ops[:3]):
            records.append(dict(input_record("p#0", op), n=2 + i))
        standby._handle_append(st, {"shard": 0, "records": records})
        standby._handle_commit(st, {"shard": 0, "lsn": 4})
        # two more records arrive... and the link dies before COMMIT
        tail = [dict(input_record("p#0", op), n=5 + i)
                for i, op in enumerate(script.ops[3:5])]
        standby._handle_append(st, {"shard": 0, "records": tail})
        assert st.sessions["p#0"].cursor == 3  # commit-gated: not applied

        report = Promoter(standby).promote()
        assert report.shards[0]["truncated_bytes"] > 0
        kept = scan_journal(st.directory).records
        payload = [r for r in kept if r.get("t") != REC_FENCE]
        assert [r["n"] for r in payload] == [1, 2, 3, 4]

    def test_offline_promote_directory(self, tmp_path, classroom_game,
                                       scripts):
        persistence = PersistenceConfig(
            directory=tmp_path, snapshot_every=0, compact=False,
        )
        manager = _manager(persistence, tick_interval_s=0.01,
                           max_steps_per_tick=1)
        manager.start()
        _submit_all(manager, classroom_game, scripts)
        time.sleep(0.1)
        manager.shutdown(drain=False)

        report = promote_directory(tmp_path, game=classroom_game)
        assert report.epochs == {0: 2, 1: 2}
        assert report.digests  # live sessions audited
        for shard in range(N_SHARDS):
            assert read_epoch(tmp_path / f"shard-{shard:02d}") == 2
        # promoting a promoted root fences again, monotonically
        report2 = promote_directory(tmp_path)
        assert report2.epochs == {0: 3, 1: 3}


class TestReplChaos:
    def test_kill_primary_chaos_cycle(self, classroom_game):
        scripts = cohort_scripts(classroom_game, 4, seed=97)
        report = run_repl_chaos(
            seed=1301, sessions=8, n_shards=N_SHARDS,
            game=classroom_game, scripts=scripts,
        )
        assert report.lost_records == 0
        assert report.caught_up and report.promote_detected
        assert report.bit_identical
        assert report.all_faults_fired
        assert report.promoted_epochs == {0: 2, 1: 2}
        assert report.resumed_completed == report.resumed_live
        assert report.ok
        # JSON-able for the CI artifact
        assert report.to_dict()["ok"] is True

    def test_rejects_unknown_plan(self):
        with pytest.raises(ValueError, match="unknown plan"):
            run_repl_chaos("no-such-plan", sessions=1)
