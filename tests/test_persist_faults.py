"""Fault injection: torn tails, corrupt frames, and dying fsyncs.

The durability claim under test: after a hard crash, recovery rebuilds
at least 99% of the sessions whose records were committed (fsynced)
before the crash, bit-identically to a never-crashed reference replay,
and every torn record is detected and counted rather than silently
swallowed.
"""

import os

import pytest

from repro import obs
from repro.persist import (
    Journal,
    PersistenceConfig,
    input_record,
    list_segments,
    recover_shard,
    scan_journal,
    start_record,
    state_digest,
)
from repro.persist.records import PersistError, apply_scripted_op
from repro.students import cohort_scripts
from repro.video.player import SimulatedClock


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 8, seed=23)


class FaultyFile:
    """An appendable file that can tear its tail or die mid-fsync."""

    def __init__(self, path, die_on_fsync_call=None):
        self._fh = open(path, "ab")
        self._die_on = die_on_fsync_call
        self.fsync_calls = 0

    def write(self, data):
        return self._fh.write(data)

    def flush(self):
        self._fh.flush()

    def fsync(self):
        self.fsync_calls += 1
        if self._die_on is not None and self.fsync_calls >= self._die_on:
            # Crash *before* the data hits the platter: nothing past the
            # previous fsync may be assumed durable.
            raise OSError("simulated device death mid-fsync")
        os.fsync(self._fh.fileno())

    def fileno(self):
        return self._fh.fileno()

    def close(self):
        self._fh.close()


def _reference_digest(game, script, upto):
    engine = game.new_engine(clock=SimulatedClock(0.0), with_video=False)
    engine.start()
    for op in script.ops[:upto]:
        apply_scripted_op(engine, op, script.dt)
    return state_digest(engine.state)


def _commit_cohort(journal, scripts, upto=4):
    """Start + ``upto`` inputs per script, all made durable."""
    committed = {}
    for script in scripts:
        journal.append(start_record(script.player_id, script.dt, script.ops))
        n = min(upto, len(script.ops))
        for op in script.ops[:n]:
            journal.append(input_record(script.player_id, op))
        committed[script.player_id] = n
    assert journal.sync(timeout=10.0)
    return committed


class TestTornTailRecovery:
    def test_crash_tail_recovers_all_committed_sessions(
        self, tmp_path, classroom_game, scripts
    ):
        config = PersistenceConfig(directory=tmp_path)
        journal = Journal(tmp_path, config)
        committed = _commit_cohort(journal, scripts)
        journal.close()

        # The crash: a record was mid-write when the process died, so
        # the segment ends in a partial frame.
        _seq, path = list_segments(tmp_path)[-1]
        with open(path, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00\xaa\xbb partial frame, no CRC")

        report = recover_shard(tmp_path, classroom_game)
        assert report.torn_records == 1
        assert report.discarded_bytes > 0

        identical = 0
        for session in report.sessions:
            script = next(
                s for s in scripts if s.player_id == session.player_id
            )
            assert session.cursor == committed[session.player_id]
            if session.digest == _reference_digest(
                classroom_game, script, session.cursor
            ):
                identical += 1
        assert len(report.sessions) == len(scripts)
        assert identical / len(scripts) >= 0.99

    def test_corrupted_committed_record_loses_only_its_suffix(
        self, tmp_path, classroom_game, scripts
    ):
        """Bit rot inside the committed log: sessions before the flip
        recover fully; the log is cut at the flip, not abandoned."""
        config = PersistenceConfig(directory=tmp_path, sync_each=True)
        journal = Journal(tmp_path, config)
        committed = _commit_cohort(journal, scripts)
        journal.close()

        _seq, path = list_segments(tmp_path)[-1]
        data = bytearray(path.read_bytes())
        flip_at = int(len(data) * 0.9)  # inside the last ~10% of records
        data[flip_at] ^= 0xFF
        path.write_bytes(bytes(data))

        report = recover_shard(tmp_path, classroom_game)
        assert report.torn_records == 1
        # Every session the surviving prefix covers is bit-identical;
        # sessions whose later inputs were cut resume at an earlier
        # cursor but still at a reference-identical state.
        identical = 0
        for session in report.sessions:
            script = next(
                s for s in scripts if s.player_id == session.player_id
            )
            assert session.cursor <= committed[session.player_id]
            if session.digest == _reference_digest(
                classroom_game, script, session.cursor
            ):
                identical += 1
        # The flip can cut at most the tail session's records entirely.
        assert len(report.sessions) >= len(scripts) - 1
        assert identical / len(report.sessions) >= 0.99

        # Recovery truncated; a re-scan sees a clean journal.
        assert scan_journal(tmp_path).torn_records == 0

    def test_torn_records_counted_in_metrics(
        self, tmp_path, classroom_game, scripts
    ):
        was = obs.enabled()
        obs.enable()
        try:
            metric = obs.get_registry().get("repro_persist_torn_records_total")
            before = metric.value() if metric is not None else 0
            config = PersistenceConfig(directory=tmp_path)
            journal = Journal(tmp_path, config)
            _commit_cohort(journal, scripts[:2])
            journal.close()
            _seq, path = list_segments(tmp_path)[-1]
            with open(path, "ab") as fh:
                fh.write(b"\x08\x00\x00\x00\x00\x00\x00\x00torn")
            recover_shard(tmp_path, classroom_game)
            metric = obs.get_registry().get("repro_persist_torn_records_total")
            assert metric.value() == before + 1
        finally:
            obs.set_enabled(was)


class TestDyingFsync:
    def test_sync_each_append_surfaces_failure(self, tmp_path, scripts):
        config = PersistenceConfig(directory=tmp_path, sync_each=True)
        journal = Journal(
            tmp_path, config,
            # Call 1 is the segment-header fsync; die on the 3rd.
            file_factory=lambda p: FaultyFile(p, die_on_fsync_call=3),
        )
        script = scripts[0]
        journal.append(start_record(script.player_id, script.dt, script.ops))
        with pytest.raises(PersistError):
            journal.append(input_record(script.player_id, script.ops[0]))
        assert journal.failed
        with pytest.raises(PersistError):  # failure is sticky
            journal.append(input_record(script.player_id, script.ops[0]))
        journal.close()

    def test_group_commit_failure_unblocks_waiters(self, tmp_path, scripts):
        config = PersistenceConfig(directory=tmp_path, group_window_s=0.001)
        journal = Journal(
            tmp_path, config,
            file_factory=lambda p: FaultyFile(p, die_on_fsync_call=2),
        )
        script = scripts[0]
        lsn = journal.append(
            start_record(script.player_id, script.dt, script.ops)
        )
        # The flusher dies on this batch; the waiter must not hang.
        assert journal.wait_durable(lsn, timeout=10.0) is False
        assert journal.failed
        journal.close()

    def test_crash_before_fsync_loses_only_unsynced_suffix(
        self, tmp_path, classroom_game, scripts
    ):
        """Records appended but never fsynced may vanish; records synced
        before the device died must all recover."""
        config = PersistenceConfig(directory=tmp_path)
        journal = Journal(tmp_path, config)
        committed = _commit_cohort(journal, scripts[:4])

        # These appends are enqueued after the device dies mid-fsync:
        # the journal fails instead of pretending they are durable.
        journal._open_file = lambda p: FaultyFile(p, die_on_fsync_call=1)
        fh = journal._fh
        journal._fh = FaultyFile(
            list_segments(tmp_path)[-1][1], die_on_fsync_call=1
        )
        fh.close()
        for script in scripts[4:]:
            try:
                journal.append(
                    start_record(script.player_id, script.dt, script.ops)
                )
            except PersistError:
                break
        journal.sync(timeout=5.0)
        journal.close()

        report = recover_shard(tmp_path, classroom_game)
        recovered = {s.player_id for s in report.sessions}
        for script in scripts[:4]:  # everything fsynced survives
            assert script.player_id in recovered
        for session in report.sessions:
            if session.player_id in committed:
                script = next(
                    s for s in scripts if s.player_id == session.player_id
                )
                assert session.digest == _reference_digest(
                    classroom_game, script, session.cursor
                )
