"""Shared fixtures: small footage, a compiled classroom game, editors."""

from pathlib import Path

import numpy as np
import pytest

from repro.core import GameWizard
from repro.core.templates import scene_footage
from repro.video import FrameSize, ShotSpec, generate_clip

SIZE = FrameSize(80, 60)


def pytest_sessionfinish(session, exitstatus):
    """On a failed run, leave a flight dump for the CI failure artifact."""
    if exitstatus == 0:
        return
    from repro import obs

    recorder = obs.get_flight_recorder()
    if len(recorder) == 0 and not obs.get_tracer().finished:
        return  # nothing observed; an empty dump would only mislead
    path = Path("pytest-flight-dump.json")
    recorder.dump(path, reason=f"pytest-exit-{exitstatus}")
    print(f"\nobs: wrote flight dump to {path}")


@pytest.fixture(scope="session")
def size():
    return SIZE


@pytest.fixture(scope="session")
def flat_clip():
    """A two-shot clip with one hard cut at frame 8, no noise."""
    return generate_clip(
        SIZE,
        [
            ShotSpec(duration=8, top_color=(200, 30, 30), bottom_color=(120, 10, 10)),
            ShotSpec(duration=8, top_color=(30, 30, 200), bottom_color=(10, 10, 120)),
        ],
    )


@pytest.fixture(scope="session")
def noisy_clip():
    """A three-shot clip with sprites and grain (seeded)."""
    rng = np.random.default_rng(5)
    from repro.video import random_shot_script

    return generate_clip(
        SIZE, random_shot_script(3, rng, size=SIZE, min_duration=10, max_duration=14),
        seed=5,
    )


def build_classroom_wizard(size=SIZE) -> GameWizard:
    """The paper's worked example, used across integration tests."""
    return (
        GameWizard("Fix the Computer", author="tests")
        .scene("classroom", "Classroom", scene_footage(size, seed=1, duration=6))
        .scene("market", "Market", scene_footage(size, seed=2, duration=6))
        .helper("classroom", "teacher", "Teacher", at=(5, 10, 10, 20),
                lines=["The computer is broken.", "Find a part at the market!"])
        .prop("classroom", "computer", "Computer", at=(30, 20, 20, 20),
              description="It will not boot.", properties={"state": "broken"})
        .item("market", "ram", "RAM module", at=(40, 40, 8, 8),
              description="A RAM module.")
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(item="ram", target="computer",
                     success_text="The computer boots!",
                     bonus=20, reward_name="Repair badge", win=True)
    )


@pytest.fixture()
def classroom_wizard():
    return build_classroom_wizard()


@pytest.fixture(scope="session")
def classroom_game():
    """A compiled classroom game, shared read-only across tests."""
    return build_classroom_wizard().build()
