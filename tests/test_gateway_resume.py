"""Kill-and-reconnect through the gateway: resumed sessions are
bit-identical to an uninterrupted run.

The acceptance scenario for the durable network edge: a persisted
gateway dies mid-session (discard shutdown — the orderly half of a
crash), a fresh process recovers the WAL, re-arms the gateway's
completion callbacks, and a reconnecting client resumes by player id.
The END digest each resumed session reports must equal the digest of
the same script played start-to-finish with no crash at all.
"""

import asyncio
import time

import pytest

from repro.gateway import GatewayClient, GatewayServer, GatewayThread
from repro.persist import PersistenceConfig, state_digest
from repro.persist.records import apply_scripted_op
from repro.serve import ServeConfig, SessionManager
from repro.students import cohort_scripts


@pytest.fixture(scope="module")
def scripts(classroom_game):
    return cohort_scripts(classroom_game, 4, seed=37)


def _config(tmp_path):
    return ServeConfig(
        n_shards=2,
        tick_interval_s=0.02,
        max_steps_per_tick=1,
        persistence=PersistenceConfig(
            directory=tmp_path, snapshot_every=3, group_window_s=0.001
        ),
    )


def _reference_digest(game, script):
    """The same script played to the end with no crash anywhere."""
    engine = game.new_engine(with_video=False)
    engine.start()
    for op in script.ops:
        apply_scripted_op(engine, op, script.dt)
    return state_digest(engine.state)


def test_kill_and_reconnect_resumes_bit_identical(
    tmp_path, classroom_game, scripts
):
    config = _config(tmp_path)
    pids = [f"crash-{i}" for i in range(len(scripts))]

    # Phase 1: submit a cohort over TCP, then kill the gateway
    # mid-flight (drain=False discards live sessions; their committed
    # steps are already on disk).
    server1 = GatewayServer(SessionManager(config), classroom_game)
    handle1 = GatewayThread(server1).start()
    try:
        async def submit_all():
            async with GatewayClient(handle1.host, handle1.port) as client:
                for pid, script in zip(pids, scripts):
                    ack = await client.submit(pid, script.ops, dt=script.dt)
                    assert ack["status"] == "admitted"

        asyncio.run(submit_all())
        time.sleep(0.15)  # a few committed steps, nobody near the end
        in_flight = server1.manager.in_flight
    finally:
        handle1.stop(drain=False)
    assert in_flight > 0, "every session finished before the kill"

    # Phase 2: a fresh process recovers the WAL behind a new gateway.
    server2 = GatewayServer(SessionManager(config), classroom_game)
    reports = server2.recover()
    recovered = [s for r in reports for s in r.sessions]
    assert recovered, "expected in-flight sessions to recover from the WAL"
    handle2 = GatewayThread(server2).start()
    try:
        async def resume_all():
            client = GatewayClient(handle2.host, handle2.port,
                                   client_name="survivor")
            statuses = await client.connect(resume=pids)
            ends = {}
            for pid in pids:
                if statuses.get(pid) == "unknown":
                    continue  # finished-and-retired before the kill
                ends[pid] = await client.wait_end(pid, timeout=60.0)
            await client.close()
            return statuses, ends

        statuses, ends = asyncio.run(resume_all())
    finally:
        handle2.stop(drain=True)

    resumed_pids = {s.player_id for s in recovered}
    assert resumed_pids <= set(pids)
    for pid in resumed_pids:
        assert statuses[pid] in ("live", "done")
    assert ends, "no resumed session delivered an END frame"
    for pid, end in ends.items():
        script = scripts[pids.index(pid)]
        assert not end["failed"], f"{pid} failed after recovery"
        assert end["digest"] == _reference_digest(classroom_game, script), (
            f"{pid} diverged from the uninterrupted reference run"
        )


def test_trace_id_survives_kill_and_reconnect(
    tmp_path, classroom_game, scripts
):
    """Request traces re-attach across crash recovery.

    Phase 1 stamps every submission with a trace id; the gateway dies
    mid-flight.  Phase 2 simulates a fresh process (``obs.reset()``
    empties the trace store), recovers the WAL, and the reconnecting
    client offers its remembered trace ids in the resume HELLO.  The
    resumed sessions must finish *under the original ids*, with their
    remaining phases re-attributed to the recovered process.
    """
    from repro import obs

    was = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        config = _config(tmp_path)
        pids = [f"trace-crash-{i}" for i in range(len(scripts))]

        server1 = GatewayServer(SessionManager(config), classroom_game)
        handle1 = GatewayThread(server1).start()
        try:
            async def submit_all():
                client = GatewayClient(handle1.host, handle1.port,
                                       trace_sample=1.0)
                await client.connect()
                tids = {}
                for pid, script in zip(pids, scripts):
                    await client.submit(pid, script.ops, dt=script.dt)
                    tids[pid] = client.trace_for(pid)
                await client.close()
                return tids

            trace_map = asyncio.run(submit_all())
            time.sleep(0.15)
        finally:
            handle1.stop(drain=False)
        assert all(trace_map.values()), "submissions were not trace-stamped"

        # Fresh process: the old process's trace store dies with it.
        obs.reset()

        server2 = GatewayServer(SessionManager(config), classroom_game)
        reports = server2.recover()
        recovered = {s.player_id for r in reports for s in r.sessions}
        if not recovered:
            pytest.skip("every session finished before the kill")
        handle2 = GatewayThread(server2).start()
        try:
            async def resume_all():
                client = GatewayClient(handle2.host, handle2.port,
                                       client_name="trace-survivor")
                statuses = await client.connect(
                    resume=pids, traces=trace_map,
                )
                ends = {}
                for pid in pids:
                    if statuses.get(pid) in ("live", "done"):
                        ends[pid] = await client.wait_end(pid, timeout=60.0)
                await client.close()
                return ends

            ends = asyncio.run(resume_all())
        finally:
            handle2.stop(drain=True)

        store = obs.get_trace_store()
        checked = 0
        for pid in recovered:
            end = ends.get(pid)
            if end is None or end.get("failed"):
                continue
            # the END frame carries the *original* trace id
            assert end.get("trace") == trace_map[pid], (
                f"{pid} finished under a different trace id after recovery"
            )
            timeline = store.get(trace_map[pid])
            assert timeline is not None
            assert timeline["status"] == "ok"
            assert timeline["attributes"].get("resumed") is True
            phases = {p["phase"] for p in timeline["phases"]}
            # the post-crash phases were re-attributed under the old id
            assert "shard_step" in phases
            assert "flush" in phases
            checked += 1
        assert checked, "no resumed session finished with its trace attached"
    finally:
        obs.reset()
        obs.set_enabled(was)


def test_recovered_session_rejects_live_input(
    tmp_path, classroom_game, scripts
):
    """Recovered sessions replay a fixed script: INPUT gets a clean error."""
    from repro.gateway import GatewayError

    config = _config(tmp_path)
    script = scripts[0]
    server1 = GatewayServer(SessionManager(config), classroom_game)
    handle1 = GatewayThread(server1).start()
    try:
        async def submit_one():
            async with GatewayClient(handle1.host, handle1.port) as client:
                await client.submit("fixed-1", script.ops, dt=script.dt)

        asyncio.run(submit_one())
        time.sleep(0.1)
    finally:
        handle1.stop(drain=False)

    server2 = GatewayServer(SessionManager(config), classroom_game)
    reports = server2.recover()
    if not any(r.sessions for r in reports):
        pytest.skip("session finished before the kill; nothing recovered")
    handle2 = GatewayThread(server2).start()
    try:
        async def drive():
            async with GatewayClient(handle2.host, handle2.port) as client:
                status = await client.resume("fixed-1")
                if status != "live":
                    return None
                try:
                    await client.send_input("fixed-1", script.ops[0])
                except GatewayError as exc:
                    return exc.code
                return "accepted"

        code = asyncio.run(drive())
    finally:
        handle2.stop(drain=True)
    # None: the session ended between resume and input (benign race)
    assert code in (None, "not_interactive", "finished")
