"""Regression tests: recovery refuses foreign or empty WAL layouts.

A typo'd ``--persist-dir`` used to "recover" zero sessions silently
(or blow up deep inside the record fold).  ``ensure_wal_layout`` and
the manager-level root check now fail fast with a typed error naming
the offending entries.
"""

import time

import pytest

from repro.gateway import GatewayConfig, GatewayServer
from repro.persist import (
    Journal,
    PersistenceConfig,
    WalLayoutError,
    ensure_wal_layout,
    recover_shard,
)
from repro.persist.records import start_record
from repro.persist.snapshot import SNAPSHOT_DIRNAME
from repro.replicate import write_epoch
from repro.serve import ServeConfig, SessionManager, session_factory_for_script
from repro.students import cohort_scripts


class TestEnsureWalLayout:
    def test_missing_directory_is_fine(self, tmp_path):
        ensure_wal_layout(tmp_path / "never-created")  # fresh start

    def test_directory_with_segments_is_fine(self, tmp_path):
        journal = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        journal.append(start_record("p", 0.1, []))
        journal.close()
        ensure_wal_layout(tmp_path)

    def test_foreign_entries_raise_and_are_named(self, tmp_path):
        (tmp_path / "thesis.docx").write_text("not a wal")
        (tmp_path / "photos").mkdir()
        with pytest.raises(WalLayoutError, match=r"thesis\.docx"):
            ensure_wal_layout(tmp_path)

    def test_empty_existing_directory_raises(self, tmp_path):
        with pytest.raises(WalLayoutError, match="empty layout"):
            ensure_wal_layout(tmp_path)

    def test_sidecars_without_segments_still_raise(self, tmp_path):
        # snapshots/ and EPOCH are ours, but a journal always has at
        # least one segment — sidecars alone mean the log went missing
        (tmp_path / SNAPSHOT_DIRNAME).mkdir()
        write_epoch(tmp_path, 3)
        with pytest.raises(WalLayoutError, match="no WAL segments"):
            ensure_wal_layout(tmp_path)

    def test_recover_shard_refuses_foreign_dir(self, tmp_path,
                                               classroom_game):
        (tmp_path / "README.txt").write_text("someone else's files")
        with pytest.raises(WalLayoutError, match="foreign entries"):
            recover_shard(tmp_path, classroom_game)


class TestManagerRootValidation:
    def _config(self, root):
        return ServeConfig(
            n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50,
            persistence=PersistenceConfig(directory=root),
        )

    def test_foreign_root_raises(self, tmp_path, classroom_game):
        (tmp_path / "models").mkdir()
        (tmp_path / "train.log").write_text("loss: 0.02")
        manager = SessionManager(self._config(tmp_path))
        with pytest.raises(WalLayoutError,
                           match="is not a persistence root"):
            manager.recover(classroom_game)

    def test_gateway_recover_propagates(self, tmp_path, classroom_game):
        (tmp_path / "notes.md").write_text("# todo")
        manager = SessionManager(self._config(tmp_path))
        gw = GatewayServer(manager, classroom_game,
                           GatewayConfig(port=0, telemetry_port=None))
        with pytest.raises(WalLayoutError,
                           match="is not a persistence root"):
            gw.recover()

    def test_valid_root_still_recovers(self, tmp_path, classroom_game):
        # write a real root, crash it, recover: the check must not get
        # in the way of the path it guards
        scripts = cohort_scripts(classroom_game, 2, seed=3)
        manager = SessionManager(self._config(tmp_path))
        manager.start()
        for script in scripts:
            assert manager.submit(
                script.player_id,
                session_factory_for_script(classroom_game, script),
            )
        deadline = time.monotonic() + 10
        while (manager.completed_sessions < len(scripts)
               and time.monotonic() < deadline):
            time.sleep(0.01)
        manager.shutdown(drain=True)

        fresh = SessionManager(self._config(tmp_path))
        reports = fresh.recover(classroom_game)  # must not raise
        assert len(reports) == 2
        fresh.shutdown(drain=False)
