"""Tests for editor video filters and storyboard thumbnails."""

import pytest

from repro.video import (
    FilterChain,
    FilterError,
    Frame,
    FrameSize,
    adjust_brightness_contrast,
    crop,
    fade_in,
    fade_out,
    grayscale,
    keyframe_index,
    letterbox,
    scale_nearest,
    segment_thumbnail,
    stamp_caption,
    storyboard,
    tint,
)
from repro.video.segment import VideoSegment

SIZE = FrameSize(24, 18)


def _frame(shade=100):
    return Frame.blank(SIZE, (shade, shade, shade))


class TestToneFilters:
    def test_brightness_shifts(self):
        out = adjust_brightness_contrast(_frame(100), brightness=30)
        assert int(out.data[0, 0, 0]) == 130

    def test_contrast_spreads(self):
        out = adjust_brightness_contrast(_frame(100), contrast=2.0)
        assert int(out.data[0, 0, 0]) == 72  # (100-128)*2+128

    def test_clipping(self):
        out = adjust_brightness_contrast(_frame(250), brightness=100)
        assert int(out.data[0, 0, 0]) == 255

    def test_validation(self):
        with pytest.raises(FilterError):
            adjust_brightness_contrast(_frame(), brightness=999)
        with pytest.raises(FilterError):
            adjust_brightness_contrast(_frame(), contrast=-1)

    def test_grayscale_equal_channels(self):
        f = Frame.blank(SIZE, (200, 50, 10))
        out = grayscale(f)
        assert (out.data[..., 0] == out.data[..., 1]).all()
        assert (out.data[..., 1] == out.data[..., 2]).all()

    def test_tint_strength(self):
        out = tint(_frame(0), (255, 0, 0), strength=1.0)
        assert (out.data[0, 0] == (255, 0, 0)).all()
        half = tint(_frame(0), (255, 0, 0), strength=0.5)
        assert abs(int(half.data[0, 0, 0]) - 127) <= 1
        with pytest.raises(FilterError):
            tint(_frame(), (0, 0, 0), strength=2.0)


class TestGeometryFilters:
    def test_crop(self):
        f = _frame()
        f.fill_rect(2, 2, 4, 4, (255, 0, 0))
        out = crop(f, 2, 2, 4, 4)
        assert out.size == FrameSize(4, 4)
        assert (out.data[0, 0] == (255, 0, 0)).all()

    def test_crop_bounds(self):
        with pytest.raises(FilterError):
            crop(_frame(), 20, 0, 10, 10)
        with pytest.raises(FilterError):
            crop(_frame(), 0, 0, 0, 5)

    def test_scale_nearest(self):
        out = scale_nearest(_frame(), FrameSize(12, 9))
        assert out.size == FrameSize(12, 9)
        assert (out.data == 100).all()

    def test_letterbox_preserves_aspect(self):
        wide = Frame.blank(FrameSize(40, 10), (200, 200, 200))
        out = letterbox(wide, FrameSize(20, 20), bar_color=(0, 0, 0))
        assert out.size == FrameSize(20, 20)
        assert (out.data[0, 0] == 0).all()       # bar
        assert (out.data[10, 10] == 200).all()   # content

    def test_caption_bar(self):
        out = stamp_caption(_frame(), height=5, ticks=2)
        assert (out.data[-2, 0] == 0).all()      # bar background
        assert (out.data[-3, 4] == 255).all()    # a tick block
        with pytest.raises(FilterError):
            stamp_caption(_frame(), height=1)


class TestSequenceFilters:
    def test_fade_in_monotone(self):
        frames = [_frame(200) for _ in range(6)]
        out = fade_in(frames, 3)
        levels = [int(f.data[0, 0, 0]) for f in out]
        assert levels[0] < levels[1] < levels[2] <= levels[3] == 200

    def test_fade_out_monotone(self):
        frames = [_frame(200) for _ in range(6)]
        out = fade_out(frames, 3)
        levels = [int(f.data[0, 0, 0]) for f in out]
        assert levels[-1] < levels[-2] < levels[-3] <= levels[-4] == 200

    def test_fade_does_not_mutate_input(self):
        frames = [_frame(200)]
        fade_in(frames, 1)
        assert int(frames[0].data[0, 0, 0]) == 200

    def test_fade_bounds(self):
        with pytest.raises(FilterError):
            fade_in([_frame()], 5)


class TestFilterChain:
    def test_composition_order(self):
        chain = FilterChain().brightness_contrast(brightness=50).grayscale()
        out = chain.apply(Frame.blank(SIZE, (100, 0, 0)))
        # brightness applied before grayscale: (150, 50, 50) -> luma
        assert len(chain) == 2
        assert (out.data[..., 0] == out.data[..., 1]).all()

    def test_apply_all(self):
        chain = FilterChain().tint((0, 0, 255), 0.5)
        outs = chain.apply_all([_frame(), _frame()])
        assert len(outs) == 2

    def test_eager_validation(self):
        with pytest.raises(FilterError):
            FilterChain().brightness_contrast(brightness=1000)

    def test_step_names(self):
        chain = FilterChain().grayscale().caption(ticks=1)
        assert chain.step_names == ["grayscale", "caption(1)"]

    def test_named_custom_step(self):
        chain = FilterChain().add("invert", lambda f: Frame(255 - f.data))
        out = chain.apply(_frame(0))
        assert (out.data == 255).all()
        with pytest.raises(FilterError):
            chain.add("", lambda f: f)


class TestThumbnails:
    def _segment(self):
        frames = [Frame.blank(SIZE, (50, 50, 50)) for _ in range(8)]
        # Frame 0 is transition residue (very different); the medoid
        # must avoid it.
        frames[0] = Frame.blank(SIZE, (250, 250, 250))
        return VideoSegment(name="seg", frames=frames)

    def test_keyframe_is_medoid(self):
        seg = self._segment()
        idx = keyframe_index(seg.frames)
        assert idx != 0

    def test_keyframe_trivial_cases(self):
        assert keyframe_index([_frame()]) == 0
        with pytest.raises(ValueError):
            keyframe_index([])

    def test_segment_thumbnail_scaled(self):
        thumb = segment_thumbnail(self._segment(), FrameSize(8, 6))
        assert thumb.image.size == FrameSize(8, 6)
        assert thumb.segment_name == "seg"

    def test_storyboard_grid(self):
        segs = [
            VideoSegment(name=f"s{i}", frames=[_frame(40 * i + 10)])
            for i in range(5)
        ]
        sheet, thumbs = storyboard(segs, FrameSize(10, 8), columns=2, gap=2)
        assert len(thumbs) == 5
        # 2 columns x 3 rows of (10+2, 8+2) cells plus leading gap
        assert sheet.size == FrameSize(2 + 2 * 12, 2 + 3 * 10)

    def test_storyboard_validation(self):
        with pytest.raises(ValueError):
            storyboard([])
        with pytest.raises(ValueError):
            storyboard([self._segment()], columns=0)
