"""Tests for scenarios and the derived scenario graph."""

import pytest

from repro.events import EventBinding, EventTable, SwitchScenario, Trigger
from repro.graph import GraphError, Scenario, ScenarioError, build_graph
from repro.objects import ImageObject, ItemObject, RectHotspot

HS = RectHotspot(0, 0, 10, 10)


def _click_switch(table, src, obj, dst, condition=""):
    table.add(EventBinding(scenario_id=src, trigger=Trigger.CLICK, object_id=obj,
                           condition=condition,
                           actions=[SwitchScenario(target=dst)]))


class TestScenario:
    def test_validation(self):
        with pytest.raises(ScenarioError):
            Scenario("Bad Id", "t", 0)
        with pytest.raises(ScenarioError):
            Scenario("ok", "", 0)
        with pytest.raises(ScenarioError):
            Scenario("ok", "t", -1)
        with pytest.raises(ScenarioError):
            Scenario("ok", "t", 0, loop=False)  # needs on_finish

    def test_object_management(self):
        sc = Scenario("s", "S", 0)
        sc.add_object(ImageObject(object_id="a", name="a", hotspot=HS))
        assert sc.has_object("a") and len(sc) == 1
        with pytest.raises(ScenarioError):
            sc.add_object(ImageObject(object_id="a", name="dup", hotspot=HS))
        removed = sc.remove_object("a")
        assert removed.object_id == "a"
        with pytest.raises(ScenarioError):
            sc.get_object("a")

    def test_objects_sorted_by_z(self):
        sc = Scenario("s", "S", 0)
        sc.add_object(ImageObject(object_id="top", name="t", hotspot=HS, z_order=5))
        sc.add_object(ImageObject(object_id="bottom", name="b", hotspot=HS, z_order=1))
        assert [o.object_id for o in sc.objects] == ["bottom", "top"]

    def test_object_at_topmost_wins(self):
        sc = Scenario("s", "S", 0)
        sc.add_object(ImageObject(object_id="under", name="u", hotspot=HS, z_order=0))
        sc.add_object(ImageObject(object_id="over", name="o", hotspot=HS, z_order=9))
        assert sc.object_at(5, 5).object_id == "over"

    def test_object_at_skips_invisible(self):
        sc = Scenario("s", "S", 0)
        o = ImageObject(object_id="ghost", name="g", hotspot=HS, visible=False)
        sc.add_object(o)
        assert sc.object_at(5, 5) is None

    def test_dict_roundtrip(self):
        sc = Scenario("s", "S", 2, loop=False, on_finish="next")
        sc.add_object(ItemObject(object_id="i", name="i", hotspot=HS))
        sc2 = Scenario.from_dict(sc.to_dict())
        assert sc2.scenario_id == "s" and sc2.segment_ref == 2
        assert sc2.on_finish == "next" and not sc2.loop
        assert sc2.has_object("i")


class TestBuildGraph:
    def _setup(self):
        scenarios = {
            "a": Scenario("a", "A", 0),
            "b": Scenario("b", "B", 1),
            "c": Scenario("c", "C", 2),
        }
        for sid, sc in scenarios.items():
            sc.add_object(ImageObject(object_id=f"btn-{sid}", name="x", hotspot=HS))
        table = EventTable()
        return scenarios, table

    def test_edges_from_switch_actions(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        _click_switch(table, "b", "btn-b", "c")
        g = build_graph(scenarios, table, "a")
        assert g.successors("a") == ["b"]
        assert g.edge_count == 2
        assert g.reachable() == {"a", "b", "c"}
        assert g.unreachable() == set()

    def test_on_finish_edges(self):
        scenarios, table = self._setup()
        scenarios["a"] = Scenario("a", "A", 0, loop=False, on_finish="b")
        g = build_graph(scenarios, table, "a")
        assert g.successors("a") == ["b"]
        infos = g.out_edges("a")
        assert infos[0].trigger == "on_finish"

    def test_global_binding_edges_from_everywhere(self):
        scenarios, table = self._setup()
        scenarios["a"].add_object(ImageObject(object_id="menu", name="m", hotspot=HS))
        table.add(EventBinding(scenario_id="*", trigger=Trigger.ENTER,
                               actions=[SwitchScenario(target="a")]))
        g = build_graph(scenarios, table, "a")
        for sid in scenarios:
            assert "a" in g.successors(sid)

    def test_unknown_target_rejected(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "nowhere")
        with pytest.raises(GraphError):
            build_graph(scenarios, table, "a")

    def test_unknown_binding_scenario_rejected(self):
        scenarios, table = self._setup()
        _click_switch(table, "zz", "btn-a", "b")
        with pytest.raises(GraphError):
            build_graph(scenarios, table, "a")

    def test_unknown_start_rejected(self):
        scenarios, table = self._setup()
        with pytest.raises(GraphError):
            build_graph(scenarios, table, "zz")

    def test_unreachable_and_dead_ends(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        g = build_graph(scenarios, table, "a")
        assert g.unreachable() == {"c"}
        assert g.dead_ends() == {"b"}

    def test_conditional_edges_marked(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b", condition="flag('x')")
        g = build_graph(scenarios, table, "a")
        assert g.out_edges("a")[0].conditional

    def test_shortest_path(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        _click_switch(table, "b", "btn-b", "c")
        g = build_graph(scenarios, table, "a")
        assert g.shortest_path("c") == ["a", "b", "c"]
        assert g.shortest_path("a") == ["a"]

    def test_shortest_path_none_when_unreachable(self):
        scenarios, table = self._setup()
        g = build_graph(scenarios, table, "a")
        assert g.shortest_path("c") is None
        with pytest.raises(GraphError):
            g.shortest_path("zz")

    def test_branching_factor(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        table.add(EventBinding(scenario_id="a", trigger=Trigger.EXAMINE,
                               object_id="btn-a",
                               actions=[SwitchScenario(target="c")]))
        g = build_graph(scenarios, table, "a")
        # a has 2 distinct successors, b and c have 0; reachable = {a,b,c}.
        assert g.branching_factor() == pytest.approx(2 / 3)

    def test_cycles(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        _click_switch(table, "b", "btn-b", "a")
        g = build_graph(scenarios, table, "a")
        cycles = g.cycles()
        assert any(set(c) == {"a", "b"} for c in cycles)

    def test_eccentricity(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        _click_switch(table, "b", "btn-b", "c")
        g = build_graph(scenarios, table, "a")
        assert g.eccentricity_from_start() == {"a": 0, "b": 1, "c": 2}

    def test_to_dot_contains_nodes_and_edges(self):
        scenarios, table = self._setup()
        _click_switch(table, "a", "btn-a", "b")
        dot = build_graph(scenarios, table, "a").to_dot()
        assert '"a"' in dot and '"b" ' in dot or '"a" -> "b"' in dot
        assert "digraph" in dot
