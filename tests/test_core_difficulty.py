"""Tests for the difficulty estimator and device-scaled simulation."""

import numpy as np
import pytest

from repro.core import (
    DifficultyReport,
    GameProject,
    ScenarioEditor,
    estimate_difficulty,
    exploration_game,
    fetch_quest_game,
    random_rollout,
)
from repro.core.templates import scene_footage
from repro.students import DEVICE_TIME_FACTORS, sample_profile, simulate_play
from repro.video import FrameSize

SIZE = FrameSize(64, 48)


class TestRandomRollout:
    def test_rollout_can_win_small_game(self, classroom_game):
        rng = np.random.default_rng(1)
        wins = sum(random_rollout(classroom_game, rng, max_actions=200)[0]
                   for _ in range(10))
        assert wins >= 5  # the classroom game is tiny; chance finds it

    def test_rollout_respects_cap(self, classroom_game):
        rng = np.random.default_rng(2)
        won, moves = random_rollout(classroom_game, rng, max_actions=3)
        assert moves <= 3


class TestEstimateDifficulty:
    def test_report_fields(self, classroom_game):
        r = estimate_difficulty(classroom_game, n_rollouts=8, max_actions=150)
        assert isinstance(r, DifficultyReport)
        assert r.solution_length == 4
        assert 0.0 <= r.distractor_ratio <= 1.0
        assert r.guidance_gap >= 1.0
        assert r.label in ("warm-up", "lesson", "challenge")

    def test_bigger_games_score_higher(self):
        small = estimate_difficulty(
            fetch_quest_game(1, size=SIZE).build(), n_rollouts=6, max_actions=150
        )
        big = estimate_difficulty(
            fetch_quest_game(4, size=SIZE).build(), n_rollouts=6, max_actions=150
        )
        assert big.score > small.score
        assert big.states_explored > small.states_explored

    def test_deterministic_given_seed(self, classroom_game):
        a = estimate_difficulty(classroom_game, seed=5, n_rollouts=6)
        b = estimate_difficulty(classroom_game, seed=5, n_rollouts=6)
        assert a == b

    def test_unwinnable_rejected(self):
        project = GameProject("Broken")
        editor = ScenarioEditor(project)
        editor.import_footage("c", scene_footage(SIZE, 1, duration=4))
        editor.commit_whole("c")
        editor.create_scenario("room", "Room", "c")
        with pytest.raises(ValueError):
            estimate_difficulty(project.compile(), n_rollouts=2)

    def test_distractors_counted(self):
        # exploration game: every artifact is on the solution path.
        museum = estimate_difficulty(
            exploration_game(2, size=SIZE).build(), n_rollouts=4, max_actions=150
        )
        # quest chain: only the last machine/part matter for the win.
        quest = estimate_difficulty(
            fetch_quest_game(3, size=SIZE).build(), n_rollouts=4, max_actions=150
        )
        assert quest.distractor_ratio > museum.distractor_ratio


class TestDeviceScaledPlay:
    def test_unknown_device(self, classroom_game):
        rng = np.random.default_rng(0)
        p = sample_profile("s", rng, archetype="achiever")
        with pytest.raises(ValueError):
            simulate_play(classroom_game, p, rng, device="neural-lace")

    def test_slower_device_longer_sessions(self, classroom_game):
        times = {}
        for device in ("keyboard_mouse", "remote"):
            rng = np.random.default_rng(3)
            p = sample_profile("s", rng, archetype="achiever")
            res = simulate_play(classroom_game, p, rng, device=device)
            times[device] = res.time_on_task / max(1, res.interactions)
        ratio = times["remote"] / times["keyboard_mouse"]
        assert ratio == pytest.approx(DEVICE_TIME_FACTORS["remote"], rel=0.05)

    def test_factors_cover_all_devices(self):
        from repro.net.devices import _DEVICES

        assert set(DEVICE_TIME_FACTORS) == set(_DEVICES)
