"""Unit + property tests for hotspot geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects import (
    CircleHotspot,
    HotspotError,
    PolygonHotspot,
    RectHotspot,
    hotspot_from_dict,
)


class TestRect:
    def test_contains_half_open(self):
        r = RectHotspot(2, 3, 4, 5)
        assert r.contains(2, 3)
        assert r.contains(5.9, 7.9)
        assert not r.contains(6, 3)
        assert not r.contains(2, 8)

    def test_bbox_and_center(self):
        r = RectHotspot(0, 0, 10, 4)
        assert r.bounding_box() == (0, 0, 10, 4)
        assert r.center() == (5, 2)

    def test_area(self):
        assert RectHotspot(0, 0, 3, 4).area() == 12

    def test_translated(self):
        r = RectHotspot(1, 1, 2, 2).translated(3, -1)
        assert r.bounding_box() == (4, 0, 6, 2)

    def test_validation(self):
        with pytest.raises(HotspotError):
            RectHotspot(0, 0, 0, 4)
        with pytest.raises(HotspotError):
            RectHotspot(0, 0, 4, -1)

    def test_dict_roundtrip(self):
        r = RectHotspot(1.5, 2.5, 3, 4)
        assert hotspot_from_dict(r.to_dict()) == r


class TestCircle:
    def test_contains_boundary(self):
        c = CircleHotspot(0, 0, 5)
        assert c.contains(3, 4)  # exactly on the circle
        assert not c.contains(3.1, 4.1)

    def test_bbox(self):
        assert CircleHotspot(10, 10, 2).bounding_box() == (8, 8, 12, 12)

    def test_area(self):
        assert CircleHotspot(0, 0, 1).area() == pytest.approx(np.pi)

    def test_validation(self):
        with pytest.raises(HotspotError):
            CircleHotspot(0, 0, 0)

    def test_dict_roundtrip(self):
        c = CircleHotspot(3, 4, 5)
        assert hotspot_from_dict(c.to_dict()) == c


class TestPolygon:
    SQUARE = [(0, 0), (10, 0), (10, 10), (0, 10)]

    def test_contains_square(self):
        p = PolygonHotspot(self.SQUARE)
        assert p.contains(5, 5)
        assert not p.contains(15, 5)
        assert not p.contains(-1, 5)

    def test_concave_polygon(self):
        # L-shape: the notch must be outside.
        p = PolygonHotspot([(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)])
        assert p.contains(2, 8)
        assert p.contains(8, 2)
        assert not p.contains(8, 8)  # inside the notch

    def test_area_signed_independent_of_winding(self):
        cw = PolygonHotspot(list(reversed(self.SQUARE)))
        ccw = PolygonHotspot(self.SQUARE)
        assert cw.area() == ccw.area() == 100

    def test_translated(self):
        p = PolygonHotspot(self.SQUARE).translated(5, 5)
        assert p.contains(12, 12)
        assert not p.contains(2, 2)

    def test_vertices_read_only(self):
        p = PolygonHotspot(self.SQUARE)
        with pytest.raises(ValueError):
            p.vertices[0, 0] = 99

    def test_validation(self):
        with pytest.raises(HotspotError):
            PolygonHotspot([(0, 0), (1, 1)])
        with pytest.raises(HotspotError):
            PolygonHotspot([(0, 0), (1, 1), (2, 2)])  # collinear: zero area

    def test_dict_roundtrip(self):
        p = PolygonHotspot(self.SQUARE)
        assert hotspot_from_dict(p.to_dict()) == p

    def test_hashable(self):
        a = PolygonHotspot(self.SQUARE)
        b = PolygonHotspot(self.SQUARE)
        assert hash(a) == hash(b)


def test_from_dict_unknown_kind():
    with pytest.raises(HotspotError):
        hotspot_from_dict({"kind": "blob"})


@given(
    cx=st.floats(-50, 50), cy=st.floats(-50, 50), r=st.floats(0.5, 30),
    px=st.floats(-100, 100), py=st.floats(-100, 100),
)
@settings(max_examples=80, deadline=None)
def test_circle_contains_matches_distance(cx, cy, r, px, py):
    """Property: circle containment == Euclidean distance test."""
    c = CircleHotspot(cx, cy, r)
    expected = (px - cx) ** 2 + (py - cy) ** 2 <= r * r
    assert c.contains(px, py) == expected


@given(
    x=st.floats(-20, 20), y=st.floats(-20, 20),
    w=st.floats(0.5, 40), h=st.floats(0.5, 40),
    dx=st.floats(-10, 10), dy=st.floats(-10, 10),
)
@settings(max_examples=60, deadline=None)
def test_rect_translation_preserves_area_and_size(x, y, w, h, dx, dy):
    """Property: translation is rigid."""
    r = RectHotspot(x, y, w, h)
    t = r.translated(dx, dy)
    assert t.area() == pytest.approx(r.area())
    x0, y0, x1, y1 = t.bounding_box()
    assert (x1 - x0, y1 - y0) == pytest.approx((w, h))


@given(
    n=st.integers(3, 8),
    seed=st.integers(0, 10_000),
    px=st.floats(-30, 30),
    py=st.floats(-30, 30),
)
@settings(max_examples=60, deadline=None)
def test_polygon_point_in_bbox_if_contained(n, seed, px, py):
    """Property: containment implies bounding-box containment."""
    rng = np.random.default_rng(seed)
    # Star-shaped polygon around the origin: guaranteed simple.
    angles = np.sort(rng.uniform(0, 2 * np.pi, size=n))
    if len(np.unique(angles)) < 3:
        return
    radii = rng.uniform(2, 20, size=n)
    verts = [(float(r * np.cos(a)), float(r * np.sin(a))) for r, a in zip(radii, angles)]
    try:
        p = PolygonHotspot(verts)
    except HotspotError:
        return  # degenerate draw
    if p.contains(px, py):
        x0, y0, x1, y1 = p.bounding_box()
        assert x0 <= px <= x1 and y0 <= py <= y1
