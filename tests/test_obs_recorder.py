"""Tests for the flight recorder: ring bounds, dumps, crash correlation."""

import json
import sys

import pytest

from repro import obs
from repro.obs.recorder import FlightRecorder, install_excepthook, uninstall_excepthook


@pytest.fixture
def obs_on():
    was = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(was)


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_retains_last_n_in_order(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record({"event": f"e{i}"})
        events = rec.events()
        assert [e["event"] for e in events] == ["e6", "e7", "e8", "e9"]
        assert len(rec) == 4
        assert rec.dropped == 6
        assert rec.total_recorded == 10

    def test_seq_is_contiguous_tail(self):
        rec = FlightRecorder(capacity=3)
        for i in range(8):
            rec.record({"event": f"e{i}"})
        seqs = [e["seq"] for e in rec.events()]
        assert seqs == [6, 7, 8]

    def test_record_copies_the_input(self):
        rec = FlightRecorder(capacity=2)
        original = {"event": "x"}
        rec.record(original)
        assert "seq" not in original  # input must not be mutated
        original["event"] = "mutated"
        assert rec.events()[0]["event"] == "x"

    def test_clear_zeroes_everything(self):
        rec = FlightRecorder(capacity=2)
        rec.record({"event": "a"})
        rec.record({"event": "b"})
        rec.record({"event": "c"})
        rec.clear()
        assert len(rec) == 0
        assert rec.dropped == 0
        assert rec.total_recorded == 0
        rec.record({"event": "fresh"})
        assert rec.events()[0]["seq"] == 1


class TestDump:
    def test_payload_structure(self, obs_on):
        rec = obs.get_flight_recorder()
        rec.record({"event": "x"})
        payload = rec.payload(reason="test")
        assert payload["reason"] == "test"
        assert payload["capacity"] == rec.capacity
        assert [e["event"] for e in payload["events"]] == ["x"]
        assert payload["metrics"]["enabled"] is True
        assert isinstance(payload["metrics"]["metrics"], list)
        assert isinstance(payload["spans"], list)

    def test_dump_writes_readable_json(self, obs_on, tmp_path):
        rec = obs.get_flight_recorder()
        rec.record({"event": "x"})
        path = rec.dump(tmp_path / "flight.json", reason="test")
        loaded = json.loads(path.read_text())
        assert loaded["reason"] == "test"
        assert [e["event"] for e in loaded["events"]] == ["x"]

    def test_default_path_uses_flight_dir(self, obs_on, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        path = obs.dump_flight(reason="env")
        assert path.parent == tmp_path
        assert path.name.startswith("repro-flight-")


class TestExcepthook:
    def test_install_uninstall_roundtrip(self, monkeypatch):
        sentinel = lambda *a: None  # noqa: E731
        monkeypatch.setattr(sys, "excepthook", sentinel)
        install_excepthook()
        assert sys.excepthook is not sentinel
        install_excepthook()  # idempotent: does not chain to itself
        uninstall_excepthook()
        assert sys.excepthook is sentinel

    def test_hook_dumps_and_chains(self, obs_on, tmp_path, monkeypatch):
        previous_calls = []
        monkeypatch.setattr(
            sys, "excepthook", lambda *a: previous_calls.append(a)
        )
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        obs.get_flight_recorder().record({"event": "pre-crash"})
        install_excepthook()
        try:
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                exc_info = sys.exc_info()
            sys.excepthook(*exc_info)
        finally:
            uninstall_excepthook()
        assert len(previous_calls) == 1  # the prior hook still ran
        dumps = list(tmp_path.glob("repro-flight-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "unhandled:RuntimeError"
        assert [e["event"] for e in payload["events"]] == ["pre-crash"]


class TestCrashCorrelation:
    """The ISSUE acceptance criterion: a crash dump from an instrumented
    engine run carries events whose trace/span ids appear in the span
    export of the same dump."""

    def test_engine_crash_dump_ids_match_span_export(
        self, obs_on, tmp_path, monkeypatch, classroom_game
    ):
        from repro.runtime import KeyPress, MouseClick

        engine = classroom_game.new_engine()
        engine.start()
        engine.handle_input(MouseClick(10.0, 15.0))
        engine.handle_input(KeyPress("right"))

        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setattr(sys, "excepthook", lambda *a: None)
        install_excepthook()
        try:
            try:
                raise RuntimeError("mid-session crash")
            except RuntimeError:
                sys.excepthook(*sys.exc_info())
        finally:
            uninstall_excepthook()

        dumps = list(tmp_path.glob("repro-flight-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())

        def walk(spans):
            for sp in spans:
                yield sp
                yield from walk(sp.get("children", []))

        span_trace_ids = {s["trace_id"] for s in walk(payload["spans"])}
        span_ids = {s["span_id"] for s in walk(payload["spans"])}
        correlated = [
            e for e in payload["events"] if e.get("trace_id") is not None
        ]
        assert correlated, "instrumented dispatch produced no correlated events"
        for event in correlated:
            assert event["trace_id"] in span_trace_ids
            assert event["span_id"] in span_ids
