"""Thread-safety: concurrent metric increments and flight-recorder writes.

Eight threads hammer the same counter, histogram and flight recorder;
the assertions prove no increment is lost and the ring's seq stamps
stay a contiguous, strictly increasing tail under contention.
"""

import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder

N_THREADS = 8
PER_THREAD = 400


@pytest.fixture
def obs_on():
    was = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(was)


def run_threads(target):
    barrier = threading.Barrier(N_THREADS)  # maximise overlap

    def runner(tid):
        barrier.wait()
        target(tid)

    threads = [
        threading.Thread(target=runner, args=(t,)) for t in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricsUnderContention:
    def test_counter_loses_no_increments(self, obs_on):
        registry = MetricsRegistry()
        counter = registry.counter("t_threads_total")

        def work(tid):
            for _ in range(PER_THREAD):
                counter.inc()

        run_threads(work)
        assert counter.total() == N_THREADS * PER_THREAD

    def test_labeled_series_stay_separate(self, obs_on):
        registry = MetricsRegistry()
        counter = registry.counter("t_threads_labeled_total")

        def work(tid):
            for _ in range(PER_THREAD):
                counter.inc(worker=str(tid))

        run_threads(work)
        for tid in range(N_THREADS):
            assert counter.value(worker=str(tid)) == PER_THREAD
        assert counter.total() == N_THREADS * PER_THREAD

    def test_histogram_counts_every_observation(self, obs_on):
        registry = MetricsRegistry()
        hist = registry.histogram("t_threads_seconds", buckets=(0.5, 1.0))

        def work(tid):
            for i in range(PER_THREAD):
                hist.observe(0.25 if i % 2 else 0.75)

        run_threads(work)
        ((_, series),) = hist.series()
        assert series.count == N_THREADS * PER_THREAD
        assert sum(series.counts) == N_THREADS * PER_THREAD


class TestFlightRecorderUnderContention:
    def test_no_event_lost_and_seq_contiguous(self):
        capacity = 256
        rec = FlightRecorder(capacity=capacity)
        total = N_THREADS * PER_THREAD

        def work(tid):
            for i in range(PER_THREAD):
                rec.record({"event": f"t{tid}.{i}"})

        run_threads(work)
        assert rec.total_recorded == total
        assert len(rec) == capacity
        assert rec.dropped == total - capacity
        seqs = [e["seq"] for e in rec.events()]
        # The retained window is exactly the last `capacity` stamps, in
        # order: strictly increasing AND gap-free.
        assert seqs == list(range(total - capacity + 1, total + 1))

    def test_metrics_and_recorder_together(self, obs_on):
        registry = MetricsRegistry()
        counter = registry.counter("t_threads_mixed_total")
        rec = FlightRecorder(capacity=64)

        def work(tid):
            for i in range(PER_THREAD):
                counter.inc(worker=str(tid))
                rec.record({"event": "tick", "worker": tid})

        run_threads(work)
        assert counter.total() == N_THREADS * PER_THREAD
        assert rec.total_recorded == N_THREADS * PER_THREAD
        seqs = [e["seq"] for e in rec.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestLoggingUnderContention:
    def test_concurrent_logging_reaches_sink_and_flight(self, obs_on):
        from repro.obs import logging as olog

        olog.reset_logging()
        records = []
        lock = threading.Lock()

        def sink(record):
            with lock:
                records.append(record)

        olog.add_log_sink(sink)
        log = olog.get_logger("t.threads")
        try:
            def work(tid):
                for i in range(100):
                    log.info("tick", worker=tid, i=i)

            run_threads(work)
        finally:
            olog.remove_log_sink(sink)
        assert len(records) == N_THREADS * 100
        assert obs.get_flight_recorder().total_recorded == N_THREADS * 100
