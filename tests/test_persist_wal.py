"""Tests for the write-ahead log: framing, rotation, group commit."""

import struct
import threading

import pytest

from repro.persist import (
    Journal,
    PersistenceConfig,
    encode_frame,
    list_segments,
    read_segment,
    segment_first_lsn,
)
from repro.persist.records import PersistError


def _rec(i, sid="s"):
    return {"t": "input", "sid": sid, "op": {"k": "key", "key": str(i)}}


class TestFrameCodec:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "seg.log"
        records = [{"t": "h", "seg": 1, "first": 1}, _rec(0), _rec(1)]
        path.write_bytes(b"".join(encode_frame(r) for r in records))
        parsed, valid, torn = read_segment(path)
        assert parsed == records
        assert valid == path.stat().st_size
        assert not torn

    def test_partial_tail_is_torn_not_fatal(self, tmp_path):
        path = tmp_path / "seg.log"
        good = encode_frame(_rec(0))
        path.write_bytes(good + encode_frame(_rec(1))[:-3])
        parsed, valid, torn = read_segment(path)
        assert parsed == [_rec(0)]
        assert valid == len(good)
        assert torn

    def test_crc_mismatch_is_torn(self, tmp_path):
        path = tmp_path / "seg.log"
        frame = bytearray(encode_frame(_rec(0)))
        frame[-1] ^= 0xFF  # flip a payload bit; CRC now lies
        path.write_bytes(bytes(frame))
        parsed, valid, torn = read_segment(path)
        assert parsed == [] and valid == 0 and torn

    def test_absurd_length_is_torn(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(struct.pack("<II", 2**31, 0) + b"xx")
        _parsed, valid, torn = read_segment(path)
        assert valid == 0 and torn


class TestJournal:
    def test_append_assigns_dense_lsns(self, tmp_path):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        lsns = [j.append(_rec(i)) for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert j.sync(timeout=5.0)
        assert j.durable_lsn == 5
        j.close()
        records, _valid, torn = read_segment(list_segments(tmp_path)[0][1])
        assert not torn
        assert [r["n"] for r in records if r.get("t") != "h"] == lsns

    def test_sync_each_mode_is_durable_per_append(self, tmp_path):
        config = PersistenceConfig(directory=tmp_path, sync_each=True)
        j = Journal(tmp_path, config)
        lsn = j.append(_rec(0))
        assert j.durable_lsn == lsn  # no waiting needed
        j.close()

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        config = PersistenceConfig(directory=tmp_path)
        j = Journal(tmp_path, config)
        for i in range(3):
            j.append(_rec(i))
        j.close()
        j2 = Journal(tmp_path, config)
        assert j2.append(_rec(3)) == 4
        j2.close()

    def test_reopen_truncates_torn_tail(self, tmp_path):
        config = PersistenceConfig(directory=tmp_path)
        j = Journal(tmp_path, config)
        for i in range(3):
            j.append(_rec(i))
        j.sync(timeout=5.0)
        j.close()
        _seq, path = list_segments(tmp_path)[-1]
        clean_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef-torn")
        j2 = Journal(tmp_path, config)
        assert path.stat().st_size == clean_size  # tail cut back
        assert j2.append(_rec(3)) == 4  # sequence unharmed
        j2.sync(timeout=5.0)
        j2.close()
        records, _valid, torn = read_segment(path)
        assert not torn
        assert [r["n"] for r in records if r.get("t") != "h"] == [1, 2, 3, 4]

    def test_segment_rotation_and_headers(self, tmp_path):
        config = PersistenceConfig(
            directory=tmp_path, segment_max_bytes=4096, sync_each=True
        )
        j = Journal(tmp_path, config)
        for i in range(200):
            j.append(_rec(i, sid=f"player-{i % 7}"))
        j.close()
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        # Headers chain: segment i+1's first LSN continues segment i.
        last = 0
        for _seq, path in segments:
            first = segment_first_lsn(path)
            assert first == last + 1
            records, _valid, torn = read_segment(path)
            assert not torn
            data = [r["n"] for r in records if r.get("t") != "h"]
            assert data == list(range(first, first + len(data)))
            last = data[-1]
        assert last == 200

    def test_group_commit_batches_across_threads(self, tmp_path):
        config = PersistenceConfig(directory=tmp_path, group_window_s=0.005)
        j = Journal(tmp_path, config)
        done = []

        def commit(w):
            lsn = j.append(_rec(w, sid=f"w{w}"))
            assert j.wait_durable(lsn, timeout=10.0)
            done.append(lsn)

        threads = [threading.Thread(target=commit, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(done) == list(range(1, 9))
        j.close()

    def test_append_after_close_raises(self, tmp_path):
        j = Journal(tmp_path, PersistenceConfig(directory=tmp_path))
        j.close()
        with pytest.raises(PersistError):
            j.append(_rec(0))

    def test_close_flushes_pending(self, tmp_path):
        config = PersistenceConfig(directory=tmp_path, group_window_s=0.5)
        j = Journal(tmp_path, config)
        lsns = [j.append(_rec(i)) for i in range(10)]
        j.close()  # must not lose the batch still inside the window
        records, _valid, torn = read_segment(list_segments(tmp_path)[0][1])
        assert not torn
        assert [r["n"] for r in records if r.get("t") != "h"] == lsns

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PersistenceConfig(directory=tmp_path, segment_max_bytes=16)
        with pytest.raises(ValueError):
            PersistenceConfig(directory=tmp_path, group_window_s=-1)
        with pytest.raises(ValueError):
            PersistenceConfig(directory=tmp_path, snapshot_every=-1)
