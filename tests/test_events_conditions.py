"""Tests for the condition expression language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.conditions import (
    ConditionError,
    compile_condition,
    evaluate,
    parse_condition,
)


class Ctx:
    """A configurable test context."""

    def __init__(self, items=(), flags=(), visited=(), score=0, props=None, counts=None):
        self._items = set(items)
        self._flags = set(flags)
        self._visited = set(visited)
        self._score = score
        self._props = props or {}
        self._counts = counts or {}

    def has_item(self, i):
        return i in self._items

    def item_count(self, i):
        return self._counts.get(i, 1 if i in self._items else 0)

    def get_flag(self, n):
        return n in self._flags

    def has_visited(self, s):
        return s in self._visited

    def get_score(self):
        return self._score

    def get_prop(self, o, k):
        return self._props.get((o, k), False)


def ev(src, **kw):
    return compile_condition(src)(Ctx(**kw))


class TestLiterals:
    def test_empty_is_true(self):
        assert ev("") and ev("   ")

    def test_booleans(self):
        assert ev("true")
        assert not ev("false")

    def test_numbers_truthy(self):
        assert ev("1")
        assert not ev("0")

    def test_strings_truthy(self):
        assert ev("'x'")
        assert not ev("''")


class TestPredicates:
    def test_has(self):
        assert ev("has('key')", items=["key"])
        assert not ev("has('key')")

    def test_flag(self):
        assert ev("flag('done')", flags=["done"])
        assert not ev("flag('done')")

    def test_visited(self):
        assert ev("visited('market')", visited=["market"])

    def test_count_comparison(self):
        assert ev("count('coin') >= 3", counts={"coin": 3})
        assert not ev("count('coin') >= 3", counts={"coin": 2})

    def test_score(self):
        assert ev("score > 10", score=11)
        assert not ev("score > 10", score=10)

    def test_prop_string_compare(self):
        assert ev("prop('pc','state') == 'broken'", props={("pc", "state"): "broken"})
        assert ev("prop('pc','state') != 'fixed'", props={("pc", "state"): "broken"})

    def test_prop_missing_reads_false(self):
        assert not ev("prop('pc','state')")


class TestBooleanOperators:
    def test_and_or_not(self):
        assert ev("true and true")
        assert not ev("true and false")
        assert ev("false or true")
        assert ev("not false")

    def test_precedence_and_over_or(self):
        # a or b and c == a or (b and c)
        assert ev("true or false and false")

    def test_parentheses(self):
        assert not ev("(true or false) and false")

    def test_double_negation(self):
        assert ev("not not true")

    def test_complex_realistic(self):
        src = "has('ram') and not flag('fixed') and prop('pc','state') == 'broken'"
        assert ev(src, items=["ram"], props={("pc", "state"): "broken"})
        assert not ev(src, items=["ram"], flags=["fixed"],
                      props={("pc", "state"): "broken"})


class TestComparisons:
    @pytest.mark.parametrize("src,expected", [
        ("1 < 2", True), ("2 < 1", False),
        ("2 <= 2", True), ("3 <= 2", False),
        ("3 > 2", True), ("2 > 2", False),
        ("2 >= 2", True), ("1 >= 2", False),
        ("2 == 2", True), ("2 != 2", False),
        ("'a' == 'a'", True), ("'a' == 'b'", False),
    ])
    def test_table(self, src, expected):
        assert ev(src) is expected

    def test_mixed_string_number_unequal(self):
        assert ev("'1' != 1")
        assert not ev("'1' == 1")

    def test_ordering_strings_rejected(self):
        with pytest.raises(ConditionError):
            ev("'a' < 'b'")

    def test_negative_numbers(self):
        assert ev("score > -5", score=0)


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "has(", "has()", "has(ram)", "(true", "true)", "and true",
        "1 ==", "== 1", "unknown('x')", "score score", "has('a' 'b')",
        "prop('a')", "@", "true &&",
    ])
    def test_rejected(self, src):
        with pytest.raises(ConditionError):
            parse_condition(src)

    def test_error_mentions_position_or_token(self):
        try:
            parse_condition("true or @")
        except ConditionError as e:
            assert "@" in str(e) or "8" in str(e)
        else:
            pytest.fail("expected ConditionError")


class TestCompileCondition:
    def test_equality_by_source(self):
        assert compile_condition("has('a')") == compile_condition("has('a')")
        assert compile_condition("has('a')") != compile_condition("has('b')")
        assert hash(compile_condition("x" == "x" and "true")) == hash(compile_condition("true"))

    def test_reusable(self):
        c = compile_condition("score >= 2")
        assert not c(Ctx(score=1))
        assert c(Ctx(score=2))


# --- property tests: generated expressions always parse and evaluate ------

_atoms = st.sampled_from([
    "true", "false", "score > 5", "score <= 10", "has('a')", "has('b')",
    "flag('f')", "visited('v')", "count('a') >= 1",
    "prop('o','k') == 'x'", "1 < 2", "'s' == 's'",
])


@st.composite
def _exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return draw(_atoms)
    op = draw(st.sampled_from(["and", "or"]))
    left = draw(_exprs(depth=depth + 1))
    right = draw(_exprs(depth=depth + 1))
    neg = draw(st.booleans())
    e = f"({left} {op} {right})"
    return f"not {e}" if neg else e


@given(src=_exprs(), score=st.integers(0, 20), has_a=st.booleans(), f=st.booleans())
@settings(max_examples=120, deadline=None)
def test_generated_expressions_total(src, score, has_a, f):
    """Property: every generated expression parses and evaluates to a bool."""
    ctx = Ctx(items=["a"] if has_a else [], flags=["f"] if f else [],
              visited=["v"], score=score, props={("o", "k"): "x"})
    result = evaluate(parse_condition(src), ctx)
    assert isinstance(result, bool)


@given(src=_exprs())
@settings(max_examples=60, deadline=None)
def test_double_negation_involution(src):
    """Property: not (not e) == e for any context."""
    ctx = Ctx(items=["a"], flags=["f"], visited=["v"], score=7,
              props={("o", "k"): "x"})
    inner = evaluate(parse_condition(src), ctx)
    outer = evaluate(parse_condition(f"not (not ({src}))"), ctx)
    assert inner == outer
