#!/usr/bin/env python
"""Quickstart: author a two-scene educational game and play it headlessly.

This is the smallest end-to-end tour of the platform:

1. synthesise footage (stands in for the designer's camera),
2. author the game with the GameWizard (the paper's "friendly interface"),
3. validate it (including the winnability proof),
4. play it programmatically through the runtime engine,
5. print the runtime screenshot (the paper's Fig. 2 view).

Run: ``python examples/quickstart.py``
"""

from repro.core import GameWizard
from repro.core.templates import scene_footage
from repro.reporting import render_runtime_screenshot
from repro.runtime import MouseClick, MouseDrag
from repro.video import FrameSize


def main() -> None:
    size = FrameSize(160, 120)

    # --- 1-2: footage + authoring -----------------------------------------
    wizard = (
        GameWizard("Fix the Computer", author="Ms. Lee")
        .scene("classroom", "Classroom", scene_footage(size, seed=1))
        .scene("market", "Market", scene_footage(size, seed=2))
        .helper(
            "classroom", "teacher", "Teacher", at=(5, 20, 14, 30),
            lines=[
                "The computer is broken.",
                "Find a part at the market and fix it!",
            ],
        )
        .prop(
            "classroom", "computer", "Computer", at=(60, 40, 30, 30),
            description="The classroom computer. It will not boot.",
            properties={"state": "broken"},
        )
        .item("market", "ram", "RAM module", at=(70, 70, 10, 10),
              description="A compatible RAM module.")
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(
            item="ram", target="computer",
            success_text="The computer boots!",
            bonus=20, reward_name="Repair badge", win=True,
        )
    )

    # --- 3: validation -------------------------------------------------------
    report = wizard.check()
    print(f"validation: {len(report.errors)} errors, "
          f"{len(report.warnings)} warnings, winnable={report.winnable}, "
          f"shortest solution={report.solution_length} moves")
    game = wizard.build()

    # --- 4: play -------------------------------------------------------------
    engine = game.new_engine()
    engine.start()

    def click(x, y):  # small helper for readable play scripts
        engine.handle_input(MouseClick(x, y))

    # go to the market, grab the RAM, come back, use it on the computer
    click(95, 12)                                   # "To market" button
    engine.handle_input(MouseDrag(75, 75, 10, 115))  # drag RAM to backpack
    click(95, 12)                                   # "Back to class"
    slot_x = engine.layout.inv_x + 2                # select the RAM slot
    click(slot_x, engine.layout.inv_y + 2)
    click(70, 50)                                   # use it on the computer

    print(f"outcome: {engine.state.outcome}, score: {engine.state.score}, "
          f"achievements: {engine.rewards.achievements(engine.state)}")

    # --- 5: the Fig. 2 view ----------------------------------------------------
    print()
    print(render_runtime_screenshot(engine))


if __name__ == "__main__":
    main()
