#!/usr/bin/env python
"""A larger adventure plus a simulated class of students (mini-E6).

Builds a museum-style exploration game with the template generator,
binds a knowledge map to its delivery points, and runs matched cohorts
on the game, a linear lesson video, and a slideshow — printing the
engagement/learning comparison the paper claims but never measures.

Run: ``python examples/campus_adventure.py``
"""

from repro.baselines import run_comparison
from repro.core import exploration_game
from repro.events import Trigger
from repro.learning import DeliveryPoint, KnowledgeItem, KnowledgeMap
from repro.reporting import format_table


def main() -> None:
    n_exhibits = 5
    wizard = exploration_game(n_exhibits=n_exhibits, title="Science Museum")
    report = wizard.check()
    print(f"game: winnable={report.winnable}, "
          f"shortest tour={report.solution_length} moves")
    game = wizard.build()

    # --- the curriculum: one item per exhibit, delivered on examine ---------
    kmap = KnowledgeMap()
    for k in range(n_exhibits):
        # Delivered actively when the student examines the artifact
        # (the once-binding that sets seen-k), passively on scene entry.
        examine_bindings = [
            b.binding_id
            for b in game.events
            if b.trigger == Trigger.EXAMINE and b.object_id == f"artifact-{k}"
        ]
        kmap.add(
            KnowledgeItem(f"k-exhibit-{k}", f"What artifact {k} demonstrates"),
            [DeliveryPoint(kind="binding", ref=examine_bindings[0]),
             DeliveryPoint(kind="enter", ref=f"exhibit-{k}")],
        )
    kmap.add(
        KnowledgeItem("k-museum", "How the museum is organised", weight=0.5),
        [DeliveryPoint(kind="enter", ref="hall")],
    )

    # --- matched cohorts on three platforms -----------------------------------
    results = run_comparison(
        game, kmap, n_students=60, seed=2007, lesson_duration=600.0
    )
    rows = [s.as_row() for s in results.values()]
    print()
    print(format_table(rows, title="Engagement and learning, matched cohorts (n=60)"))

    vgbl, lin, sli = results["vgbl"], results["linear_video"], results["slideshow"]
    print()
    print(f"dropout:   game {vgbl.dropout_rate:.0%}  "
          f"slides {sli.dropout_rate:.0%}  video {lin.dropout_rate:.0%}")
    print(f"gain:      game {vgbl.mean_knowledge_gain:.2f}  "
          f"slides {sli.mean_knowledge_gain:.2f}  video {lin.mean_knowledge_gain:.2f}")
    assert vgbl.mean_knowledge_gain > lin.mean_knowledge_gain
    assert vgbl.dropout_rate <= min(sli.dropout_rate, lin.dropout_rate)
    print("\nthe paper's §2.2 ordering holds: game > traditional e-learning")


if __name__ == "__main__":
    main()
