#!/usr/bin/env python
"""The full §4.1 authoring workflow: one movie in, a game out.

Demonstrates the part of the tool the wizard hides: the designer brings
*one* long clip ("select video files from network or video cameras"),
the tool divides it into scenario components automatically, the designer
adjusts the proposal (rename / merge / split), promotes segments to
scenarios, mounts objects, and watches the validator catch an authoring
mistake before fixing it.  Ends with the Fig. 1 screenshot.

Run: ``python examples/authoring_workflow.py``
"""

import numpy as np

from repro.core import (
    AuthoringLedger,
    GameProject,
    ObjectEditor,
    ScenarioEditor,
    validate,
)
from repro.events import EndGame, SetFlag, ShowText, Trigger
from repro.objects import RectHotspot
from repro.reporting import render_authoring_screenshot
from repro.video import FrameSize, generate_clip, random_shot_script


def main() -> None:
    size = FrameSize(160, 120)

    # --- the designer's raw movie: 4 shots, cuts and a fade ----------------
    rng = np.random.default_rng(42)
    script = random_shot_script(4, rng, size=size, min_duration=16, max_duration=24)
    clip = generate_clip(size, script, seed=42)
    print(f"movie: {clip.frame_count} frames, true cuts at {clip.boundaries}")

    ledger = AuthoringLedger()
    project = GameProject("Campus Orientation", author="orientation office")
    scenes = ScenarioEditor(project, ledger)
    objects = ObjectEditor(project, ledger)

    # --- automatic division into scenario components -------------------------
    scenes.import_footage("movie", clip.frames)
    timeline = scenes.auto_segment("movie", parallel_workers=2)
    print(f"auto-segmentation proposed {len(timeline)} segments: {timeline.names}")

    # --- the designer adjusts the proposal -----------------------------------
    scenes.rename_segment("movie", timeline.names[0], "gate")
    scenes.rename_segment("movie", timeline.names[1], "library")
    scenes.rename_segment("movie", timeline.names[2], "lab")
    scenes.rename_segment("movie", timeline.names[3], "cafeteria")
    scenes.commit("movie")

    for sid, title in [
        ("gate", "Main gate"),
        ("library", "Library"),
        ("lab", "Computer lab"),
        ("cafeteria", "Cafeteria"),
    ]:
        scenes.create_scenario(sid, title, sid)
    scenes.set_start("gate")

    # --- wiring and a deliberate mistake --------------------------------------
    objects.link_scenes("gate", "library", "Library")
    objects.link_scenes("gate", "lab", "Computer lab")
    objects.link_scenes("library", "gate", "Back to gate")
    objects.link_scenes("lab", "gate", "Back to gate")
    # Mistake: the cafeteria is never linked, and the game cannot be won.
    objects.place_image("library", "rare-book", "Rare book",
                        RectHotspot(60, 50, 20, 14),
                        description="A first edition on parallel processing.")

    report = validate(project)
    print("\nfirst validation pass (designer forgot things):")
    for issue in report.issues:
        print("  ", issue)
    assert not report.ok or report.winnable is False

    # --- the fix ----------------------------------------------------------------
    objects.link_scenes("gate", "cafeteria", "Cafeteria")
    objects.link_scenes("cafeteria", "gate", "Back to gate")
    objects.bind(
        "library", Trigger.EXAMINE, object_id="rare-book", once=True,
        actions=[SetFlag(name="found-book"),
                 ShowText(text="You found the orientation checklist!")],
    )
    objects.bind(
        "gate", Trigger.ENTER, condition="flag('found-book') and visited('cafeteria')",
        once=True,
        actions=[ShowText(text="Orientation complete!"), EndGame(outcome="won")],
    )

    report = validate(project)
    print(f"\nsecond validation pass: errors={len(report.errors)} "
          f"warnings={len(report.warnings)} winnable={report.winnable} "
          f"(solution: {report.solution_length} moves)")

    game = project.compile()
    print(f"compiled container: {game.container_bytes / 1024:.0f} KiB, "
          f"{len(game.scenarios)} scenarios")
    print(f"authoring effort: {ledger.report().total_ops} ops, "
          f"weighted {ledger.report().weighted_cost}")

    print("\n" + render_authoring_screenshot(project))


if __name__ == "__main__":
    main()
