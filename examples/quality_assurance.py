#!/usr/bin/env python
"""Course QA workflow: reference replays, difficulty, localisation.

How a course team keeps an authored game healthy over time:

1. record the teacher's reference playthrough (``InputRecorder``),
2. gate every edit on replaying it (``replay`` raises on drift),
3. check the difficulty label stays in the intended band,
4. localise and prove the translated build is still the same game.

Run: ``python examples/quality_assurance.py``
"""

from repro.core import (
    LocalePack,
    estimate_difficulty,
    extract_strings,
    fetch_quest_game,
    localize_game,
    missing_translations,
    solve,
)
from repro.runtime import InputRecorder, MouseClick, MouseDrag, ReplayMismatch, replay
from repro.video import FrameSize

SIZE = FrameSize(160, 120)


def main() -> None:
    wizard = fetch_quest_game(n_quests=2, size=SIZE, title="QA Demo")
    game = wizard.build()

    # --- 1: record the reference playthrough ------------------------------
    engine = game.new_engine(with_video=False)
    engine.start()
    recorder = InputRecorder(engine, game.title)

    def center(scene, obj):
        return game.scenarios[scene].get_object(obj).hotspot.center()

    recorder.handle_input(MouseClick(*center("hub", "hub-go-place-1")))
    px, py = center("place-1", "part-1")
    recorder.handle_input(MouseDrag(px, py, 2, engine.layout.inv_y + 2))
    recorder.handle_input(MouseClick(*center("place-1", "place-1-go-hub")))
    recorder.handle_input(MouseClick(engine.layout.inv_x + 2,
                                     engine.layout.inv_y + 2))
    recorder.handle_input(MouseClick(*center("hub", "machine-1")))
    recording = recorder.finish()
    print(f"reference recorded: {len(recording)} steps, "
          f"outcome={recording.expected_outcome}, "
          f"score={recording.expected_score}")

    # --- 2: an edit that breaks the course is caught -----------------------
    project = wizard.project
    winning = [b for b in project.events if b.trigger == "use_item"
               and b.item_id == "part-1"][0]
    project.events.remove(winning.binding_id)
    broken = project.compile()
    try:
        replay(broken, recording)
    except ReplayMismatch as exc:
        print(f"edit gate caught the regression: {exc}")
    project.events.add(winning)  # revert the bad edit
    replay(project.compile(), recording)
    print("after revert: reference replay passes again")

    # --- 3: difficulty stays in band ----------------------------------------
    report = estimate_difficulty(game, n_rollouts=10, max_actions=200)
    print(f"difficulty: score={report.score:.1f} label={report.label} "
          f"(solution {report.solution_length} moves, "
          f"random player needs ~{report.mean_random_moves:.0f})")

    # --- 4: localisation ------------------------------------------------------
    strings = extract_strings(game)
    pack = LocalePack("zh-TW")
    glossary = {
        "Hub room": "中央大廳", "Place 0": "場所零", "Place 1": "場所一",
        "The computer boots!": "電腦開機了！",
    }
    for s in strings:
        pack.add(s, glossary.get(s, f"〈{s}〉"))
    assert not missing_translations(game, pack)
    localized = localize_game(game, pack)
    print(f"localised {len(strings)} strings to {pack.locale}; "
          f"title: {localized.title!r}")
    a, b = solve(game), solve(localized)
    assert len(a.winning_script) == len(b.winning_script)
    print("localised build is provably the same game "
          f"({len(b.winning_script)}-move solution preserved)")


if __name__ == "__main__":
    main()
