#!/usr/bin/env python
"""The paper's §3.2 worked example, authored through the raw editors.

"In a classroom in game, the NPC told players a computer was not worked
and order players to fix it.  Players examine the computer in video
first and find a broken component inside.  Finally, players move to
another scenario, markets, to get the components they needed and return
to classroom and fix the computer."

This example uses the *raw* scenario/object editors (not the wizard) to
show the full authoring surface, adds the "different feedback" branches
(wrong component, examining before/after the fix), saves and reloads the
project, prints the solver's auto-walkthrough, and replays a full
student session with a session log.

Run: ``python examples/classroom_computer_repair.py``
"""

import tempfile

from repro.core import (
    AuthoringLedger,
    GameProject,
    ObjectEditor,
    ScenarioEditor,
    load_project,
    save_project,
    solve,
    validate,
)
from repro.core.templates import scene_footage
from repro.events import (
    AwardBonus,
    EndGame,
    OpenWeb,
    SetProperty,
    ShowText,
    TakeItem,
    Trigger,
)
from repro.objects import RectHotspot
from repro.runtime import Dialogue, DialogueChoice, DialogueNode, MouseClick, MouseDrag, SessionRecorder
from repro.video import FrameSize


def author_project() -> GameProject:
    size = FrameSize(160, 120)
    ledger = AuthoringLedger()
    project = GameProject("Classroom Computer Repair", author="course designer")
    scenes = ScenarioEditor(project, ledger)
    objects = ObjectEditor(project, ledger)

    # --- scenario editor: footage → scenarios ------------------------------
    scenes.import_footage("classroom-video", scene_footage(size, seed=11))
    scenes.import_footage("market-video", scene_footage(size, seed=12))
    scenes.commit_whole("classroom-video")
    scenes.commit_whole("market-video")
    scenes.create_scenario("classroom", "Classroom", "classroom-video")
    scenes.create_scenario("market", "Market", "market-video")
    scenes.set_start("classroom")

    # --- object editor: the cast --------------------------------------------
    # A branching conversation, not just fixed lines: the teacher answers
    # a question if asked.
    teacher_talk = Dialogue(
        "dlg-teacher",
        nodes=[
            DialogueNode(
                "hello",
                "The classroom computer stopped working. Can you fix it?",
                [
                    DialogueChoice("What do I do first?", next_node="advice"),
                    DialogueChoice("On it!", next_node=None),
                ],
            ),
            DialogueNode(
                "advice",
                "Examine the computer to find the broken part, then check "
                "the market for a replacement.",
                [DialogueChoice("Thanks!", next_node=None)],
            ),
        ],
        root="hello",
    )
    objects.place_npc("classroom", "teacher", "Teacher",
                      RectHotspot(5, 20, 14, 30), dialogue=teacher_talk)
    objects.place_image(
        "classroom", "computer", "Computer", RectHotspot(60, 40, 30, 30),
        description="The classroom computer.",
    )
    objects.set_property("computer", "state", "broken")
    objects.place_item("market", "ram", "RAM module", RectHotspot(70, 70, 10, 10),
                       description="A compatible RAM module.")
    objects.place_item("market", "fan", "Cooling fan", RectHotspot(30, 75, 10, 10),
                       description="A cooling fan. Probably not the problem.")
    objects.place_weblink(
        "market", "spec-sheet", "Memory spec sheet",
        "https://example.edu/ram-compatibility", RectHotspot(110, 70, 24, 12),
    )
    objects.link_scenes("classroom", "market", "To market")
    objects.link_scenes("market", "classroom", "Back to class")

    # --- events: investigation and the repair, with guarded feedback ---------
    objects.bind(
        "classroom", Trigger.EXAMINE, object_id="computer",
        condition="prop('computer','state') == 'broken'",
        actions=[ShowText(text="Inside you find a dead RAM module.")],
    )
    objects.bind(
        "classroom", Trigger.EXAMINE, object_id="computer",
        condition="prop('computer','state') == 'fixed'",
        actions=[ShowText(text="The computer hums along happily now.")],
    )
    objects.bind(
        "market", Trigger.CLICK, object_id="spec-sheet",
        actions=[OpenWeb(url="https://example.edu/ram-compatibility")],
    )
    objects.bind(
        "classroom", Trigger.USE_ITEM, object_id="computer", item_id="ram",
        once=True,
        actions=[
            SetProperty(object_id="computer", key="state", value="fixed"),
            TakeItem(item_id="ram"),
            AwardBonus(points=20, reward_id=None),
            ShowText(text="You install the RAM. The computer boots!"),
            EndGame(outcome="won"),
        ],
    )
    objects.bind(
        "classroom", Trigger.USE_ITEM, object_id="computer", item_id="fan",
        actions=[ShowText(text="The fan spins, but the computer stays dead.")],
    )

    print("authoring effort:", ledger.report().total_ops, "ops,",
          f"max skill: {ledger.report().max_skill_required}")
    return project


def main() -> None:
    project = author_project()

    report = validate(project)
    print(f"validation: errors={len(report.errors)} warnings={len(report.warnings)} "
          f"winnable={report.winnable}")
    for issue in report.issues:
        print("  ", issue)

    # Persistence round-trip, as the authoring tool would do on Save.
    with tempfile.TemporaryDirectory() as td:
        save_project(project, td)
        project = load_project(td)
    game = project.compile()

    # The solver's auto-generated walkthrough.
    solution = solve(game)
    print("\nwalkthrough (auto-generated):")
    for i, move in enumerate(solution.winning_script, 1):
        print(f"  {i}. {move.describe()}")

    # A full interactive session with the wrong item first.
    engine = game.new_engine()
    engine.start()
    recorder = SessionRecorder(engine.bus, "demo-student")

    engine.handle_input(MouseClick(10, 30))            # talk to the teacher
    engine.choose_dialogue(0)                          # "What do I do first?"
    engine.choose_dialogue(0)                          # "Thanks!"
    engine.handle_input(MouseClick(70, 50, button="right"))  # examine computer
    engine.handle_input(MouseClick(1, 1))              # dismiss popup
    engine.handle_input(MouseClick(95, 12))            # to market
    engine.handle_input(MouseClick(120, 75))           # read the spec sheet
    engine.handle_input(MouseClick(1, 1))              # close web popup
    engine.handle_input(MouseDrag(33, 78, 10, 115))    # take the fan (wrong!)
    engine.handle_input(MouseDrag(73, 73, 10, 115))    # take the RAM
    engine.handle_input(MouseClick(95, 12))            # back to class
    inv = engine.state.inventory
    # try the fan first: guarded feedback branch
    fan_slot = [s.item_id for s in inv.slots].index("fan")
    engine.handle_input(MouseClick(engine.layout.inv_x + fan_slot * engine.layout.slot_w + 2,
                                   engine.layout.inv_y + 2))
    engine.handle_input(MouseClick(70, 50))
    print("\nafter wrong item:", engine.state.popups[-1].content)
    engine.handle_input(MouseClick(1, 1))
    # now the RAM
    ram_slot = [s.item_id for s in inv.slots].index("ram")
    engine.handle_input(MouseClick(engine.layout.inv_x + ram_slot * engine.layout.slot_w + 2,
                                   engine.layout.inv_y + 2))
    engine.handle_input(MouseClick(70, 50))
    print("outcome:", engine.state.outcome, "score:", engine.state.score,
          "web visits:", engine.state.web_visits)

    log = recorder.finish(engine.state.play_time, engine.state.outcome,
                          engine.state.score, len(engine.state.visited))
    print("session log:", log.to_dict())


if __name__ == "__main__":
    main()
