#!/usr/bin/env python
"""A multi-sitting course: save/resume, adaptive hints, mastery, reports.

One student plays the museum game across two sittings with an autosave
between them, gets solver-backed hints when stuck, and accumulates
Bayesian-knowledge-tracing mastery; the lecturer then receives the
class and curriculum reports for a small simulated class.

Run: ``python examples/course_session.py``
"""

import tempfile

import numpy as np

from repro.core import exploration_game
from repro.core.solver import _apply, solve
from repro.events import Trigger
from repro.learning import (
    DeliveryPoint,
    KnowledgeItem,
    KnowledgeMap,
    MasteryTracker,
    OutcomeRecord,
    class_report,
    curriculum_report,
)
from repro.runtime import AutosavePolicy, HintAdvisor, SaveManager
from repro.students import sample_profile, simulate_play
from repro.video import FrameSize

SIZE = FrameSize(120, 90)
N_EXHIBITS = 3


def build_course():
    game = exploration_game(n_exhibits=N_EXHIBITS, size=SIZE,
                            title="Museum Course").build()
    kmap = KnowledgeMap()
    for k in range(N_EXHIBITS):
        examine = [b.binding_id for b in game.events
                   if b.trigger == Trigger.EXAMINE
                   and b.object_id == f"artifact-{k}"][0]
        kmap.add(KnowledgeItem(f"k-exhibit-{k}", f"artifact {k}'s story",
                               objective=f"objective-{k}"),
                 [DeliveryPoint(kind="binding", ref=examine),
                  DeliveryPoint(kind="enter", ref=f"exhibit-{k}")])
    return game, kmap


def main() -> None:
    game, kmap = build_course()

    with tempfile.TemporaryDirectory() as save_dir:
        manager = SaveManager(save_dir, game.title)
        advisor = HintAdvisor(game)

        # ---- sitting 1: play half the solution, autosaving -------------
        engine = game.new_engine(with_video=False)
        engine.start()
        AutosavePolicy(manager, engine, min_interval=0.0)
        script = solve(game).winning_script
        half = len(script) // 2
        for move in script[:half]:
            _apply(engine, move)
        manager.save("end-of-lesson-1", engine.state, saved_at=1.0)
        print(f"sitting 1 ended in {engine.state.current_scenario!r} "
              f"after {half} moves; slots: "
              f"{[s.slot for s in manager.slots()]}")

        # ---- sitting 2: resume, ask for hints, finish -------------------
        engine2 = game.new_engine(with_video=False)
        engine2.start()
        manager.resume_engine("end-of-lesson-1", engine2)
        print("\nresumed. the student is stuck; escalating hints:")
        for level in (0, 1, 2):
            hint = advisor.hint(engine2.state, level=level)
            print(f"  hint {level}: {hint.text}")
        remaining = advisor.shortest_completion(engine2.state)
        for move in remaining:
            _apply(engine2, move)
        print(f"sitting 2 outcome: {engine2.state.outcome}, "
              f"score {engine2.state.score}")

    # ---- a small class with mastery tracking ----------------------------
    rng = np.random.default_rng(42)
    records = []
    trackers = {}
    for i in range(6):
        profile = sample_profile(f"student-{i}", rng)
        tracker = MasteryTracker(kmap)
        # Two sittings: mastery accumulates across both.
        for sitting in range(2):
            play = simulate_play(game, profile, rng, max_seconds=600)
            exposures = kmap.exposures_from_session(
                play.entered_scenarios, play.fired_bindings,
                play.examined_objects, play.dialogue_nodes,
            )
            tracker.observe_session(exposures)
        trackers[profile.player_id] = tracker
        records.append(OutcomeRecord(
            player_id=profile.player_id, platform="vgbl",
            time_on_task=play.time_on_task, completed=play.completed,
            dropped_out=play.dropped_out, interactions=play.interactions,
            knowledge_gain=tracker.mean_mastery(),
            final_engagement=play.final_attention, score=play.score,
        ))

    print("\n" + class_report(records, trackers, mastery_bar=0.5))
    print("\n" + curriculum_report(kmap, list(trackers.values()), weak_bar=0.4))


if __name__ == "__main__":
    main()
