#!/usr/bin/env python
"""Interactive-TV delivery: streaming a game over a constrained channel.

The paper situates VGBL in the interactive-TV tradition (§2): video
reaches the audience over a network and is controlled with living-room
devices.  This example streams a branching game across channel profiles
with each prefetch policy, then compares control devices on the same
interaction script.

Run: ``python examples/interactive_tv.py``
"""

import numpy as np

from repro.core import fetch_quest_game
from repro.graph import build_graph
from repro.net import Channel, PREFETCH_POLICIES, StreamSession, make_device
from repro.reporting import format_table
from repro.video import VideoReader


def main() -> None:
    game = fetch_quest_game(n_quests=4, title="Streamed Quest").build()
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    print(f"game: {reader.segment_count} segments, "
          f"{reader.total_bytes / 1e6:.1f} MB container")

    # A player's tour: hub → each place and back, dwelling ~20 s per scene.
    path = [("hub", 20.0)]
    for k in range(4):
        path += [(f"place-{k}", 18.0), ("hub", 12.0)]

    # --- channels × policies -------------------------------------------------
    rows = []
    for label, bw, lat in [
        ("ADSL 2 Mbit", 250_000, 0.030),
        ("Cable 8 Mbit", 1_000_000, 0.020),
        ("LAN 100 Mbit", 12_500_000, 0.002),
    ]:
        for policy in PREFETCH_POLICIES:
            channel = Channel(bandwidth_bps=bw, latency_s=lat)
            session = StreamSession(reader, graph, channel, policy=policy)
            stats = session.play_path(path)
            rows.append({
                "channel": label,
                "policy": policy,
                "mean_delay_s": stats.mean_startup_delay,
                "max_delay_s": stats.max_startup_delay,
                "instant": f"{stats.instant_switch_fraction:.0%}",
                "fetched_MB": stats.bytes_fetched / 1e6,
                "wasted_MB": stats.bytes_wasted / 1e6,
            })
    print()
    print(format_table(rows, title="Branch startup latency by prefetch policy"))

    # --- control devices -------------------------------------------------------
    rng = np.random.default_rng(3)
    hub = game.scenarios["hub"]
    device_rows = []
    for name in ("keyboard_mouse", "tablet", "pda", "remote"):
        device = make_device(name)
        total_events = 0
        total_seconds = 0.0
        for target in [o.object_id for o in hub.objects][:6]:
            plan = device.activate(hub, target, rng)
            total_events += len(plan.events)
            total_seconds += plan.seconds
        device_rows.append({
            "device": name,
            "events_for_6_activations": total_events,
            "seconds": round(total_seconds, 1),
        })
    print()
    print(format_table(device_rows, title="Device interaction cost (6 object activations)"))
    print("\nmouse/keyboard is cheapest - exactly why §3.1 chooses it for the game platform")


if __name__ == "__main__":
    main()
