"""E2 / Figure 2: the runtime interface, regenerated mid-game.

The paper's Fig. 2 shows the runtime with a white-background image
object (umbrella) mounted on the playing video, the inventory window and
buttons.  This bench reproduces that exact frame state — an item object
with a white-keyed sprite mounted on a scenario, some backpack contents,
a button — renders the interface, and measures the render loop.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.core import GameWizard
from repro.core.templates import scene_footage
from repro.objects import RectHotspot
from repro.reporting import render_runtime_screenshot
from repro.video import FrameSize

SIZE = FrameSize(160, 120)


def _umbrella_pixels() -> np.ndarray:
    """A red umbrella on a pure-white background (the Fig. 2 object)."""
    px = np.full((20, 20, 3), 255, dtype=np.uint8)
    ys = np.arange(20)[:, None]
    xs = np.arange(20)[None, :]
    canopy = ((xs - 10) ** 2 + (ys - 6) ** 2 <= 64) & (ys <= 8)
    px[canopy] = (200, 30, 40)
    px[9:18, 9:11] = (90, 60, 30)  # handle
    return px


@pytest.fixture(scope="module")
def engine():
    wiz = (
        GameWizard("Fig2 Scene", author="bench")
        .scene("street", "Street", scene_footage(SIZE, seed=7))
        .scene("shop", "Shop", scene_footage(SIZE, seed=8))
        .connect("street", "shop", "Enter shop", "Back to street")
        .item("street", "coin", "Coin", at=(20, 90, 8, 8))
    )
    # The Fig. 2 umbrella: an image object with a white background,
    # mounted directly on the video frame with white-keying on.
    wiz._object_editor.place_item(
        "street", "umbrella", "Umbrella", hotspot=RectHotspot(90, 50, 20, 20),
        pixels=_umbrella_pixels(),
        description="A red umbrella with a white background.",
    )
    wiz.fetch_quest(item="coin", target="umbrella",
                    success_text="You bought the umbrella!", win=True)
    game = wiz.build()
    eng = game.new_engine()
    eng.start()
    # Mid-game state matching the figure: an item in the backpack.
    eng.state.inventory.add("coin", name="Coin")
    return eng


def test_fig2_screenshot_regenerated(benchmark, engine, results_dir):
    shot = benchmark(render_runtime_screenshot, engine)
    for element in (
        "Interactive VGBL Player",
        "Inventory window",
        "<Umbrella>",        # the mounted image object
        "[Enter shop]",      # the segment-switch button
        "[Coin]",            # backpack contents
        "score:",
    ):
        assert element in shot, f"Fig. 2 element missing: {element!r}"
    save_result("fig2_runtime_environment.txt", shot)


def test_fig2_white_key_alpha(benchmark, engine):
    """The umbrella's white background must be transparent (§4.3)."""
    obj = engine.scenarios["street"].get_object("umbrella")
    rgb, alpha = benchmark(obj.render_sprite)
    assert alpha[0, 0] == 0.0           # white corner keyed out
    assert alpha[6, 10] == 1.0          # canopy opaque
    assert 0.1 < float(alpha.mean()) < 0.9


def test_fig2_composited_frame_rate(benchmark, engine):
    """Frames/second of the full composite (video + objects + chrome)."""
    def frame():
        engine.tick(1 / 24.0)
        return engine.render()

    out = benchmark(frame)
    assert out.size == SIZE


def test_fig2_frame_deterministic(benchmark, engine):
    """Same state -> bit-identical composited frame (regression anchor)."""
    a = engine.render()
    b = benchmark(engine.render)
    assert a.checksum() == b.checksum()
