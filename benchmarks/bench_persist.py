"""Durability bench: group commit vs fsync-per-record, plus recovery.

The headline claim this file defends: under concurrent writers that
each require *equal durability* (a commit returns only once its record
is fsynced), the group-commit journal sustains at least 5x the
committed-records/second of the naive fsync-per-append baseline,
because one fsync covers a whole batch of records across writers.

fsync cost varies wildly across CI hardware — on tmpfs it is nearly
free, which would make the comparison measure scheduler noise instead
of commit protocol efficiency.  The bench therefore injects a fixed
fsync service time through the journal's ``file_factory`` hook (a
device model: ~one disk flush), making the ratio deterministic.  The
actual record IO still hits the real filesystem, and a post-run scan
verifies every committed record is readable back.

Tunable from the environment so the CI smoke job can run it small:

``REPRO_PERSIST_BENCH_WRITERS``
    Concurrent committing writers (default ``16``).
``REPRO_PERSIST_BENCH_COMMITS``
    Durable commits per writer (default ``50``).
``REPRO_PERSIST_BENCH_FSYNC_MS``
    Injected fsync service time in milliseconds (default ``1.0``).
"""

import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

import pytest

from conftest import save_json, save_result
from repro import obs
from repro.persist import (
    Journal,
    PersistenceConfig,
    recover_shard,
    scan_journal,
)

SLO_FILE = Path(__file__).parent.parent / "examples" / "slo.toml"

WRITERS = int(os.environ.get("REPRO_PERSIST_BENCH_WRITERS", "16"))
COMMITS = int(os.environ.get("REPRO_PERSIST_BENCH_COMMITS", "50"))
FSYNC_MS = float(os.environ.get("REPRO_PERSIST_BENCH_FSYNC_MS", "1.0"))


class _ModelledDiskFile:
    """Appendable file whose fsync costs a fixed service time."""

    def __init__(self, path: Path, fsync_delay_s: float) -> None:
        self._fh = open(path, "ab")
        self._delay = fsync_delay_s

    def write(self, data: bytes) -> int:
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fsync(self) -> None:
        time.sleep(self._delay)
        os.fsync(self._fh.fileno())

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()


def _run_mode(sync_each: bool) -> dict:
    """Closed-loop committed-records/s at equal durability semantics."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-wal-"))
    try:
        config = PersistenceConfig(
            directory=root, sync_each=sync_each, group_window_s=0.001
        )
        journal = Journal(
            root,
            config,
            label="bench-sync" if sync_each else "bench-group",
            file_factory=lambda p: _ModelledDiskFile(p, FSYNC_MS / 1e3),
        )
        errors: list = []

        def writer(w: int) -> None:
            try:
                for i in range(COMMITS):
                    lsn = journal.append(
                        {"t": "input", "sid": f"w{w}",
                         "op": {"k": "key", "key": str(i)}}
                    )
                    if not sync_each:
                        assert journal.wait_durable(lsn, timeout=30.0)
            except Exception as exc:  # surfaced by the caller
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        journal.close()
        assert not errors, f"writer errors: {errors[:3]}"

        report = scan_journal(root)
        # Recovery over the journal we just wrote: the records carry no
        # start frames (pure commit-path load), so nothing is rebuilt —
        # but the scan+fold path runs for real and feeds the
        # repro_persist_recovery_seconds histogram the SLO rules gate.
        recovery = recover_shard(root, game=None)
        return {
            "mode": "fsync-per-record" if sync_each else "group-commit",
            "records": WRITERS * COMMITS,
            "records_on_disk": len(report.records),
            "torn": report.torn_records,
            "elapsed_s": elapsed,
            "records_per_s": WRITERS * COMMITS / elapsed,
            "recovery_s": recovery.duration_s,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def commit_runs():
    obs.enable()  # commit/group-size histograms feed the SLO rules
    baseline = _run_mode(sync_each=True)
    grouped = _run_mode(sync_each=False)
    return baseline, grouped


def test_group_commit_durability_and_readback(commit_runs, results_dir):
    baseline, grouped = commit_runs
    rows = [
        {
            "mode": r["mode"],
            "records": r["records"],
            "elapsed_s": f"{r['elapsed_s']:.3f}",
            "records_per_s": f"{r['records_per_s']:.0f}",
            "recovery_ms": f"{r['recovery_s'] * 1e3:.2f}",
        }
        for r in (baseline, grouped)
    ]
    from repro.reporting import format_table

    save_result(
        "persist_group_commit.txt",
        format_table(
            rows,
            title=(
                f"WAL commit throughput ({WRITERS} writers x {COMMITS} "
                f"commits, {FSYNC_MS}ms modelled fsync)"
            ),
        )
        + f"\nspeedup: {grouped['records_per_s'] / baseline['records_per_s']:.1f}x",
    )
    for r in (baseline, grouped):
        # Every committed record must be readable back, in order, clean.
        assert r["records_on_disk"] == r["records"]
        assert r["torn"] == 0


def test_group_commit_beats_per_record_fsync(commit_runs):
    """The acceptance bar: >= 5x throughput at equal durability."""
    baseline, grouped = commit_runs
    speedup = grouped["records_per_s"] / baseline["records_per_s"]
    assert speedup >= 5.0, (
        f"group commit only {speedup:.2f}x over fsync-per-record "
        f"({grouped['records_per_s']:.0f} vs {baseline['records_per_s']:.0f} rec/s)"
    )


def test_persist_emits_machine_readable_result(commit_runs, results_dir):
    """BENCH_persist.json: throughput + commit p95, for tooling."""
    from repro.obs.slo import _find_metric, histogram_quantile

    baseline, grouped = commit_runs
    entry = _find_metric(obs.snapshot(), "repro_persist_commit_seconds")
    commit_p95 = None if entry is None else histogram_quantile(entry, 0.95)
    payload = {
        "benchmark": "persist",
        "writers": WRITERS,
        "commits_per_writer": COMMITS,
        "modelled_fsync_ms": FSYNC_MS,
        "p95_commit_s": commit_p95,
        "points": [
            {
                "mode": r["mode"],
                "throughput_records_per_s": r["records_per_s"],
                "records": r["records"],
                "recovery_s": r["recovery_s"],
            }
            for r in (baseline, grouped)
        ],
    }
    path = save_json("BENCH_persist.json", payload)
    assert path.is_file()
    assert commit_p95 is not None and commit_p95 > 0
    for point in payload["points"]:
        assert point["throughput_records_per_s"] > 0


def test_persist_slo_rules_pass(commit_runs):
    """The repro_persist_* rules of examples/slo.toml hold under load."""
    rules = [
        r for r in obs.parse_slo_file(SLO_FILE)
        if (r.metric or r.numerator or "").startswith("repro_persist_")
    ]
    assert rules, "examples/slo.toml lost its persist rules"
    results, all_ok = obs.evaluate_slos(rules, obs.snapshot())
    breached = [r.rule.title for r in results if not r.ok]
    assert all_ok, f"persist SLO rules breached: {breached}"
