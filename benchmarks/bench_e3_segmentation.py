"""E3: automatic division of video into scenario components (§4.1).

Regenerates the segmentation-quality table (precision/recall/F1 against
synthetic ground truth across clips), measures detection throughput, and
the serial-vs-parallel speedup of the difference-signal kernel.
"""

import time

import numpy as np
import pytest

from conftest import save_result
from repro.reporting import format_table
from repro.video import (
    FrameSize,
    ShotDetector,
    detect_shots,
    generate_clip,
    parallel_difference_signal,
    random_shot_script,
    score_detection,
)

SIZE = FrameSize(160, 120)
SEEDS = (1, 2, 3, 4, 5, 6)


def _clip(seed, n_shots=4):
    rng = np.random.default_rng(seed)
    return generate_clip(
        SIZE,
        random_shot_script(n_shots, rng, size=SIZE, min_duration=14, max_duration=22),
        seed=seed,
    )


@pytest.fixture(scope="module")
def clips():
    return [_clip(s) for s in SEEDS]


def test_e3_accuracy_table(benchmark, clips, results_dir):
    """The E3 table: per-clip P/R/F1 plus the macro average."""
    def detect_all():
        return [detect_shots(c.frames) for c in clips]

    detections = benchmark(detect_all)
    rows = []
    f1s = []
    for seed, clip, det in zip(SEEDS, clips, detections):
        p, r, f1 = score_detection(det, clip.boundaries, tolerance=2)
        f1s.append(f1)
        rows.append({
            "clip": f"seed-{seed}", "frames": clip.frame_count,
            "true_cuts": len(clip.boundaries), "detected": len(det),
            "precision": p, "recall": r, "f1": f1,
        })
    rows.append({
        "clip": "MACRO", "frames": sum(c.frame_count for c in clips),
        "true_cuts": sum(len(c.boundaries) for c in clips),
        "detected": sum(len(d) for d in detections),
        "precision": "", "recall": "", "f1": float(np.mean(f1s)),
    })
    save_result("e3_segmentation_accuracy.txt",
                format_table(rows, title="E3: shot-boundary detection accuracy"))
    assert float(np.mean(f1s)) >= 0.85, "segmentation quality regressed"


def test_e3_detection_throughput(benchmark, clips):
    """Frames/second of the full detector on one clip."""
    clip = clips[0]
    benchmark(detect_shots, clip.frames)


def test_e3_parallel_speedup(benchmark, results_dir):
    """Serial vs multiprocessing difference-signal wall time.

    Correctness (parallel == serial) is asserted.  The speedup column is
    informational and recorded together with the host's CPU count: on a
    single-core host (this sandbox) the parallel path can only pay
    overhead — the table exists so multi-core runs show the scaling.
    """
    import os

    clip = _clip(99, n_shots=6)
    serial_detector = ShotDetector()

    t0 = time.perf_counter()
    serial = serial_detector.difference_signal(clip.frames)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel, stats = parallel_difference_signal(clip.frames, max_workers=4)
    t_parallel = time.perf_counter() - t0

    assert np.allclose(serial, parallel)
    rows = [
        {"path": "serial", "workers": 1, "host_cpus": os.cpu_count(),
         "transport": "-", "seconds": t_serial, "speedup": 1.0},
        {"path": "parallel", "workers": stats.workers_used,
         "host_cpus": os.cpu_count(), "transport": stats.transport,
         "seconds": t_parallel,
         "speedup": t_serial / t_parallel if t_parallel > 0 else float("inf")},
    ]
    save_result("e3_parallel_speedup.txt",
                format_table(rows, title="E3: difference-signal kernel scaling"))

    benchmark(serial_detector.difference_signal, clip.frames)


def test_e3_editor_guard_against_oversegmentation(benchmark):
    """Sprites moving within a shot must not produce cuts (the detector's
    robustness property the scenario editor relies on)."""
    from repro.video import MovingSprite, ShotSpec

    spec = ShotSpec(
        duration=60, top_color=(40, 90, 150), bottom_color=(10, 40, 90),
        sprites=[MovingSprite((250, 250, 250), 10, (10.0, 60.0), (2.5, 0.0)),
                 MovingSprite((20, 20, 20), 8, (150.0, 30.0), (-2.0, 1.0))],
        noise_level=4,
    )
    clip = generate_clip(SIZE, [spec], seed=1)
    detected = benchmark(detect_shots, clip.frames)
    assert detected == [], f"over-segmentation: {detected}"
