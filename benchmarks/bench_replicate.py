"""Replication bench: standby lag under load, failover losslessness.

Two claims this file defends:

* **Steady state:** under a full bench cohort streaming through the
  sharded server, the warm standby's p95 shard lag stays under 2 ticks
  of the primary's simulation clock — i.e. the replica is close enough
  to serve reads that are at most a couple of frames stale.
* **Failover:** a seeded ``repl-kill-primary`` chaos run (primary
  killed mid-flight, link delayed and dropped by the fault plan, the
  standby promoted) loses **zero** durable records and every replica
  session's state digest is bit-identical to an independent
  from-scratch replay of its journal — replication is an availability
  feature, never a divergence feature.

Lag is measured in records (``repro_repl_lag_records``); the
tick conversion divides by ``max_steps_per_tick``, a single session's
per-tick record production — the most conservative denominator, since
every shard runs several sessions and produces a multiple of that.

Tunable from the environment so the CI smoke job can run it small:

``REPRO_REPL_BENCH_SESSIONS``
    Cohort size streamed through the primary (default ``12``).
``REPRO_REPL_BENCH_SHARDS``
    Shards (and standby follower threads; default ``2``).
``REPRO_REPL_BENCH_SEED``
    Seed for scripts and the chaos schedule (default ``1301``).
"""

import os
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from conftest import save_json, save_result
from repro import obs
from repro.core import fetch_quest_game
from repro.persist import PersistenceConfig, scan_journal
from repro.replicate import ReplicationSource, StandbyReplica, run_repl_chaos
from repro.reporting import format_table
from repro.serve import ServeConfig, SessionManager, session_factory_for_script
from repro.students import cohort_scripts

SLO_FILE = Path(__file__).parent.parent / "examples" / "slo.toml"

SESSIONS = int(os.environ.get("REPRO_REPL_BENCH_SESSIONS", "12"))
SHARDS = int(os.environ.get("REPRO_REPL_BENCH_SHARDS", "2"))
SEED = int(os.environ.get("REPRO_REPL_BENCH_SEED", "1301"))

TICK_S = 0.003
MAX_STEPS = 8
LAG_TICKS_BOUND = 2.0


def _p95(samples):
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))] if ordered else 0.0


def _steady_state() -> dict:
    """Drive a full cohort through a replicated pair; measure the lag."""
    game = fetch_quest_game(n_quests=2, title="replication bench").build()
    scripts = cohort_scripts(game, SESSIONS, seed=SEED)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-repl-"))
    try:
        persistence = PersistenceConfig(
            directory=root / "primary", group_window_s=0.002,
            snapshot_every=0, compact=False,
        )
        manager = SessionManager(ServeConfig(
            n_shards=SHARDS, tick_interval_s=TICK_S,
            max_steps_per_tick=MAX_STEPS, persistence=persistence,
        ))
        t0 = time.perf_counter()
        with ReplicationSource(persistence, SHARDS) as source:
            source.attach(manager)
            manager.start()
            with StandbyReplica(
                root / "standby", game, SHARDS, source.host, source.port,
            ) as standby:
                for script in scripts:
                    assert manager.submit(
                        script.player_id,
                        session_factory_for_script(game, script),
                    )
                assert manager.drain(timeout=120)
                manager.shutdown(drain=False)
                tips = {
                    i: scan_journal(
                        persistence.shard_dir(i), truncate=False
                    ).tip_lsn
                    for i in range(SHARDS)
                }
                assert standby.wait_caught_up(tips, timeout_s=60)
                elapsed = time.perf_counter() - t0
                shards = []
                for st in standby.shard_states():
                    samples = list(st.lag_samples)
                    shards.append({
                        "shard": st.index,
                        "samples": len(samples),
                        "p95_lag_records": _p95(samples),
                        "max_lag_records": max(samples, default=0),
                        "final_lag_records": st.lag,
                        "records": st.applied_lsn,
                    })
        shipped = sum(tips.values())
        return {
            "sessions": SESSIONS,
            "shards": shards,
            "records": shipped,
            "elapsed_s": elapsed,
            "records_per_s": shipped / elapsed,
            "p95_lag_ticks": max(
                row["p95_lag_records"] / MAX_STEPS for row in shards
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def repl_runs():
    obs.enable()  # lag gauge / apply histogram feed the SLO rules
    steady = _steady_state()
    game = fetch_quest_game(n_quests=2, title="failover bench").build()
    chaos = run_repl_chaos(
        seed=SEED, sessions=max(4, SESSIONS // 2), n_shards=SHARDS,
        game=game, scripts=cohort_scripts(game, 4, seed=SEED + 1),
    )
    return steady, chaos


def test_standby_lag_stays_under_two_ticks(repl_runs, results_dir):
    steady, _ = repl_runs
    rows = [
        {
            "shard": row["shard"],
            "records": row["records"],
            "lag_samples": row["samples"],
            "p95_lag_records": row["p95_lag_records"],
            "p95_lag_ticks": f"{row['p95_lag_records'] / MAX_STEPS:.2f}",
            "final_lag": row["final_lag_records"],
        }
        for row in steady["shards"]
    ]
    save_result(
        "replicate_lag.txt",
        format_table(
            rows,
            title=(
                f"standby lag ({SESSIONS} sessions x {SHARDS} shards, "
                f"{steady['records']} records in {steady['elapsed_s']:.2f}s)"
            ),
        )
        + f"\np95 lag: {steady['p95_lag_ticks']:.2f} ticks "
        f"(bound {LAG_TICKS_BOUND})",
    )
    for row in steady["shards"]:
        assert row["samples"] > 0, "shard never sampled its lag"
        assert row["final_lag_records"] == 0, "standby never caught up"
    assert steady["p95_lag_ticks"] < LAG_TICKS_BOUND, (
        f"standby p95 lag {steady['p95_lag_ticks']:.2f} ticks >= "
        f"{LAG_TICKS_BOUND} at bench load"
    )


def test_failover_is_lossless_and_bit_identical(repl_runs):
    """The acceptance bar: kill the primary, lose nothing, diverge never."""
    _, chaos = repl_runs
    assert chaos.all_faults_fired, "fault schedule never completed"
    assert chaos.lost_records == 0, (
        f"promotion lost {chaos.lost_records} durable records"
    )
    assert not chaos.digest_mismatches and chaos.digests_checked > 0, (
        f"{len(chaos.digest_mismatches)} of {chaos.digests_checked} replica "
        f"digests diverged from the reference replay: "
        f"{chaos.digest_mismatches[:3]}"
    )
    assert chaos.promote_detected and chaos.caught_up
    assert chaos.resumed_completed == chaos.resumed_live
    assert chaos.ok


def test_replicate_emits_machine_readable_result(repl_runs, results_dir):
    """BENCH_replicate.json: lag + failover audit, for tooling."""
    steady, chaos = repl_runs
    payload = {
        "benchmark": "replicate",
        "sessions": SESSIONS,
        "shards": SHARDS,
        "seed": SEED,
        "steady_state": {
            "records": steady["records"],
            "records_per_s": steady["records_per_s"],
            "p95_lag_ticks": steady["p95_lag_ticks"],
            "lag_ticks_bound": LAG_TICKS_BOUND,
            "per_shard": steady["shards"],
        },
        "failover": chaos.to_dict(),
    }
    path = save_json("BENCH_replicate.json", payload)
    assert path.is_file()
    assert payload["steady_state"]["records_per_s"] > 0
    assert payload["failover"]["ok"] is True


def test_replicate_slo_rules_pass(repl_runs):
    """The repro_repl_* rules of examples/slo.toml hold under load."""
    rules = [
        r for r in obs.parse_slo_file(SLO_FILE)
        if (r.metric or r.numerator or "").startswith("repro_repl_")
    ]
    assert rules, "examples/slo.toml lost its replication rules"
    results, all_ok = obs.evaluate_slos(rules, obs.snapshot())
    breached = [r.rule.title for r in results if not r.ok]
    assert all_ok, f"replication SLO rules breached: {breached}"
