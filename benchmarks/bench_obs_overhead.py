"""Disabled-path overhead of the observability layer.

The obs package promises that instrumentation is *free when off*: every
record site — counter increments, histogram observes, span context
managers, structured log calls — first checks a module-level boolean
and returns before allocating or reading the clock.  This bench holds
that promise to numbers: with ``REPRO_OBS`` off, the whole
instrumentation envelope must stay within noise, both in absolute terms
(sub-microsecond per site on any plausible CI box, asserted with a very
generous ceiling) and relative to the real work it wraps (a fraction of
one engine dispatch).

The suite runs with obs *forced off* regardless of the environment so
the CI smoke job (which sets REPRO_OBS=1 for the other benches) cannot
accidentally turn this into an enabled-path measurement.  The one
exception is the request-tracing overhead test at the bottom, which
deliberately re-enables obs: its promise is about the *enabled* path —
head-sampling 1% of gateway submissions must not dent throughput.
"""

import time

import pytest

from conftest import save_result
from repro import obs
from repro.obs import logging as olog
from repro.obs import metrics as ometrics
from repro.obs import tracing as otracing
from repro.reporting import format_table

#: Absolute per-call ceiling for one disabled instrumentation site.  A
#: disabled call is one attribute load + boolean check (~100 ns); 10 µs
#: leaves two orders of magnitude for shared-CI noise and still fails
#: loudly if someone puts an allocation before the flag check.
DISABLED_CALL_CEILING_S = 10e-6

REPS = 20_000


@pytest.fixture(autouse=True)
def obs_off():
    """Force the disabled path, whatever the environment says."""
    was = obs.enabled()
    obs.set_enabled(False)
    yield
    obs.set_enabled(was)


def _per_call(fn, reps=REPS, repeats=5):
    """Best-of-N mean seconds per call (best-of defeats scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(reps)
        best = min(best, time.perf_counter() - t0)
    return best / reps


def _bench_counter(reps):
    c = ometrics.counter("bench_obs_overhead_total")
    for _ in range(reps):
        c.inc(kind="noop")


def _bench_histogram(reps):
    h = ometrics.histogram("bench_obs_overhead_seconds")
    for _ in range(reps):
        h.observe(0.5)


def _bench_span(reps):
    for _ in range(reps):
        with otracing.span("bench.noop"):
            pass


def _bench_log(reps):
    log = olog.get_logger("bench.overhead")
    for _ in range(reps):
        log.debug("noop", a=1, b="x")


def _bench_full_envelope(reps):
    """Everything an instrumented hot path does per event, disabled."""
    c = ometrics.counter("bench_obs_overhead_total")
    h = ometrics.histogram("bench_obs_overhead_seconds")
    log = olog.get_logger("bench.overhead")
    for _ in range(reps):
        with otracing.span("bench.noop"):
            c.inc()
            h.observe(0.5)
            log.debug("noop")


def test_disabled_sites_stay_within_noise(results_dir):
    sites = {
        "counter.inc": _bench_counter,
        "histogram.observe": _bench_histogram,
        "span (context mgr)": _bench_span,
        "log.debug (kwargs)": _bench_log,
        "full envelope": _bench_full_envelope,
    }
    rows = []
    for name, fn in sites.items():
        per_call = _per_call(fn)
        rows.append({"site": name, "ns_per_call": f"{per_call * 1e9:.1f}"})
        assert per_call < DISABLED_CALL_CEILING_S, (
            f"disabled {name} costs {per_call * 1e6:.2f} µs/call "
            f"(ceiling {DISABLED_CALL_CEILING_S * 1e6:.0f} µs) - "
            "something runs before the enabled-flag check"
        )
    save_result(
        "obs_disabled_overhead.txt",
        format_table(rows, title="Disabled-path obs overhead (best-of-5)"),
    )


def test_disabled_envelope_is_fraction_of_dispatch():
    """The whole disabled envelope must vanish next to one real dispatch."""
    from repro.core import fetch_quest_game
    from repro.runtime import KeyPress

    engine = fetch_quest_game(n_quests=1, title="overhead").build().new_engine()
    engine.start()

    def dispatch(reps):
        for _ in range(reps):
            engine.handle_input(KeyPress("right"))

    dispatch_per_call = _per_call(dispatch, reps=200, repeats=3)
    envelope_per_call = _per_call(_bench_full_envelope)
    # The envelope is a handful of boolean checks; one dispatch walks the
    # binding table.  x0.5 keeps the assertion far from both numbers.
    assert envelope_per_call < dispatch_per_call * 0.5, (
        f"disabled obs envelope ({envelope_per_call * 1e6:.2f} µs) is not "
        f"small next to an engine dispatch ({dispatch_per_call * 1e6:.2f} µs)"
    )


def test_tracing_overhead_under_five_percent(results_dir):
    """Request tracing at 1% head sampling costs <5% gateway throughput.

    Runs the same socket burst through a loopback gateway with trace
    sampling off and at 1%, best-of-3 each so scheduler noise cannot
    manufacture a regression, and holds the traced/untraced throughput
    ratio above 0.95.  Obs is ON here — the claim is about the enabled
    path, where the unsampled common case is one ``None`` check per
    hook.
    """
    from repro.core import fetch_quest_game
    from repro.gateway import GatewayServer, GatewayThread
    from repro.serve import ServeConfig, SessionManager, SocketLoadGenerator
    from repro.students import cohort_scripts

    obs.set_enabled(True)  # the autouse fixture restores this afterwards
    obs.reset()
    game = fetch_quest_game(n_quests=2, title="trace overhead").build()
    scripts = cohort_scripts(game, 8, seed=11)

    def one_run(sample: float) -> float:
        manager = SessionManager(ServeConfig(
            n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50,
        ))
        server = GatewayServer(manager, game)
        with GatewayThread(server) as handle:
            report = SocketLoadGenerator(
                handle.host, handle.port, scripts,
                clients=4, trace_sample=sample,
            ).run(80, timeout=60.0)
        assert report.drained, "overhead run failed to drain"
        return report.sessions_per_second

    # Interleave base/traced runs so machine-load drift hits both arms
    # equally; best-of defeats one-off scheduler stalls.
    base = traced = 0.0
    for _ in range(4):
        base = max(base, one_run(0.0))
        traced = max(traced, one_run(0.01))
    assert base > 0
    ratio = traced / base
    save_result(
        "obs_tracing_overhead.txt",
        format_table(
            [
                {"trace_sample": "0.00", "sessions_per_s": f"{base:.1f}"},
                {"trace_sample": "0.01", "sessions_per_s": f"{traced:.1f}",
                 "vs_untraced": f"{ratio:.3f}x"},
            ],
            title="Gateway throughput with request tracing (best-of-4)",
        ),
    )
    assert ratio >= 0.95, (
        f"1% trace sampling cut gateway throughput to {ratio:.3f}x "
        f"({traced:.1f} vs {base:.1f} sessions/s) - over the 5% budget"
    )
