"""Cluster bench: quorum-commit overhead, kill-a-quorum-member audit.

Two claims this file defends:

* **Overhead:** gating a traced END's durability wait on 2-of-3
  standby acks (``PersistenceConfig.quorum_standbys``) costs less than
  **2x** the p95 submit-to-complete latency of the same workload with
  primary-only durability.  The acks ride the existing shipping link,
  so the marginal cost is one loopback round-trip folded into the
  group-commit window — not a second fsync.
* **Safety:** the seeded ``repl-quorum-partition`` chaos audit — link
  jitter from the fault plan, one quorum member hard-killed mid-burst,
  then the primary killed and the freshest survivor promoted — never
  acks a record that any surviving quorum member lacks, keeps every
  survivor's state digests bit-identical to a from-scratch replay, and
  answers placement-routed reads across the failover without manual
  reconfiguration.

Latency is sampled per session: submit through the placement-routed
gateway, then wait for the session's ``on_done`` callback — which the
shard fires only after the END's durability bookkeeping, quorum wait
included, so the sample is the client-visible ack time.

Tunable from the environment so the CI smoke job can run it small:

``REPRO_CLUSTER_BENCH_SESSIONS``
    Latency probes per mode, and the chaos cohort size (default ``12``).
``REPRO_CLUSTER_BENCH_SHARDS``
    Shards per node (default ``2``).
``REPRO_CLUSTER_BENCH_STANDBYS``
    Standby node count (default ``3``; quorum is 2-of-N).
``REPRO_CLUSTER_BENCH_SEED``
    Seed for scripts and the chaos schedule (default ``1407``).
"""

import os
import threading
import time
from pathlib import Path

import pytest

from conftest import save_json, save_result
from repro import obs
from repro.cluster import ClusterSupervisor, run_cluster_chaos, traced_factory
from repro.core import fetch_quest_game
from repro.reporting import format_table
from repro.serve import session_factory_for_script
from repro.students import cohort_scripts

SLO_FILE = Path(__file__).parent.parent / "examples" / "slo.toml"

SESSIONS = int(os.environ.get("REPRO_CLUSTER_BENCH_SESSIONS", "12"))
SHARDS = int(os.environ.get("REPRO_CLUSTER_BENCH_SHARDS", "2"))
STANDBYS = int(os.environ.get("REPRO_CLUSTER_BENCH_STANDBYS", "3"))
SEED = int(os.environ.get("REPRO_CLUSTER_BENCH_SEED", "1407"))

QUORUM = 2
OVERHEAD_BOUND = 2.0


def _p95(samples):
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))] if ordered else 0.0


def _submit_latencies(quorum: int) -> list:
    """Per-session submit -> complete seconds through one cluster."""
    game = fetch_quest_game(n_quests=2, title="cluster bench").build()
    scripts = cohort_scripts(game, SESSIONS, seed=SEED)
    samples = []
    with ClusterSupervisor(
        game, n_shards=SHARDS, n_standbys=STANDBYS, quorum=quorum,
    ) as supervisor:
        for script in scripts:
            base = traced_factory(session_factory_for_script(game, script))
            settled = threading.Event()

            def factory(player_id, _base=base, _settled=settled):
                session = _base(player_id)
                # on_done fires after the END's durability bookkeeping
                # (quorum wait included): the client-visible ack
                session.on_done = lambda _s: _settled.set()
                return session

            t0 = time.perf_counter()
            assert supervisor.submit(script.player_id, factory)
            assert settled.wait(timeout=30.0), (
                f"session {script.player_id} never settled "
                f"(quorum={quorum})"
            )
            samples.append(time.perf_counter() - t0)
    return samples


@pytest.fixture(scope="module")
def cluster_runs():
    obs.enable()  # quorum wait histogram / placement counters feed SLOs
    local = _submit_latencies(0)
    quorum = _submit_latencies(QUORUM)
    chaos = run_cluster_chaos(
        seed=SEED, sessions=SESSIONS, n_shards=SHARDS,
        n_standbys=STANDBYS, quorum=QUORUM,
    )
    return local, quorum, chaos


def test_quorum_commit_overhead_under_two_x(cluster_runs, results_dir):
    local, quorum, _ = cluster_runs
    p95_local, p95_quorum = _p95(local), _p95(quorum)
    ratio = p95_quorum / p95_local if p95_local > 0 else float("inf")
    rows = [
        {
            "mode": name,
            "samples": len(vals),
            "p50_ms": f"{sorted(vals)[len(vals) // 2] * 1e3:.2f}",
            "p95_ms": f"{_p95(vals) * 1e3:.2f}",
            "max_ms": f"{max(vals) * 1e3:.2f}",
        }
        for name, vals in (
            ("local-durable", local),
            (f"quorum {QUORUM}/{STANDBYS}", quorum),
        )
    ]
    save_result(
        "cluster_quorum_latency.txt",
        format_table(
            rows,
            title=(
                f"submit->complete latency ({SESSIONS} probes x "
                f"{SHARDS} shards, {STANDBYS} standbys)"
            ),
        )
        + f"\np95 overhead: {ratio:.2f}x (bound {OVERHEAD_BOUND}x)",
    )
    assert ratio < OVERHEAD_BOUND, (
        f"quorum commit p95 {p95_quorum * 1e3:.1f}ms is {ratio:.2f}x the "
        f"local-durability p95 {p95_local * 1e3:.1f}ms (bound "
        f"{OVERHEAD_BOUND}x)"
    )


def test_cluster_chaos_audit_passes(cluster_runs):
    """The acceptance bar: kill a quorum member, then the primary —
    no acked write may be missing from any surviving quorum member."""
    _, _, chaos = cluster_runs
    assert chaos.all_faults_fired, "fault schedule never completed"
    assert chaos.lost_records == 0, (
        f"{chaos.lost_records} primary records missing from a survivor"
    )
    assert not chaos.digest_mismatches and chaos.digests_checked > 0, (
        f"{len(chaos.digest_mismatches)} of {chaos.digests_checked} "
        f"survivor digests diverged: {chaos.digest_mismatches[:3]}"
    )
    assert chaos.quorum_timeouts == 0 and chaos.durability_timeouts == 0
    assert chaos.queries_ok == chaos.queries_total > 0, (
        "placement-routed reads failed after the failover"
    )
    assert chaos.post_failover_submit_ok
    assert chaos.ok


def test_cluster_emits_machine_readable_result(cluster_runs, results_dir):
    """BENCH_cluster.json: quorum overhead + chaos audit, for tooling."""
    local, quorum, chaos = cluster_runs
    p95_local, p95_quorum = _p95(local), _p95(quorum)
    payload = {
        "benchmark": "cluster",
        "sessions": SESSIONS,
        "shards": SHARDS,
        "standbys": STANDBYS,
        "quorum": QUORUM,
        "seed": SEED,
        "quorum_overhead": {
            "p95_local_s": p95_local,
            "p95_quorum_s": p95_quorum,
            "ratio": p95_quorum / p95_local if p95_local else None,
            "bound": OVERHEAD_BOUND,
            "samples_per_mode": SESSIONS,
        },
        "chaos": chaos.to_dict(),
    }
    path = save_json("BENCH_cluster.json", payload)
    assert path.is_file()
    assert payload["quorum_overhead"]["ratio"] is not None
    assert payload["chaos"]["ok"] is True


def test_cluster_slo_rules_pass(cluster_runs):
    """The repro_quorum_*/repro_placement_* rules hold under load."""
    rules = [
        r for r in obs.parse_slo_file(SLO_FILE)
        if (r.metric or r.numerator or "").startswith(
            ("repro_quorum_", "repro_placement_")
        )
    ]
    assert rules, "examples/slo.toml lost its cluster rules"
    results, all_ok = obs.evaluate_slos(rules, obs.snapshot())
    breached = [r.rule.title for r in results if not r.ok]
    assert all_ok, f"cluster SLO rules breached: {breached}"
