"""Serving-layer bench: shard-count sweep through the session manager.

Offers a fixed load of cohort-scripted sessions to ``repro.serve``
managers of increasing shard count and reports completed sessions per
second plus per-shard p95 tick latency (read from the obs histogram via
a before/after snapshot diff).  The headline claim this file defends:
at a fixed offered load, going from 1 shard to 4 shards at least
doubles sessions/second.

Tunable from the environment so the CI smoke job can run a small,
fast sweep:

``REPRO_SERVE_BENCH_SHARDS``
    Comma-separated shard counts to sweep (default ``1,2,4``).
``REPRO_SERVE_BENCH_SESSIONS``
    Sessions offered per sweep point (default ``200``).

The sweep results are also gated in-process against the
``repro_serve_*`` rules of ``examples/slo.toml`` — the same rules
``repro obs check`` enforces on the demo workload.
"""

import os
from pathlib import Path

import pytest

from conftest import save_json, save_result
from repro import obs
from repro.core import fetch_quest_game
from repro.reporting import format_table
from repro.serve import run_serve_benchmark
from repro.students import cohort_scripts

SLO_FILE = Path(__file__).parent.parent / "examples" / "slo.toml"


def _env_shards() -> list:
    raw = os.environ.get("REPRO_SERVE_BENCH_SHARDS", "1,2,4")
    return [int(s) for s in raw.split(",") if s.strip()]


def _env_sessions() -> int:
    return int(os.environ.get("REPRO_SERVE_BENCH_SESSIONS", "200"))


@pytest.fixture(scope="module")
def sweep():
    """One shard-count sweep at fixed load, shared by every assertion."""
    obs.enable()  # per-shard p95 needs the tick histogram recording
    game = fetch_quest_game(n_quests=2, title="serve bench").build()
    scripts = cohort_scripts(game, 12, seed=2007)
    return run_serve_benchmark(
        game,
        _env_shards(),
        sessions=_env_sessions(),
        scripts=scripts,
        tick_interval_s=0.01,
        max_steps_per_tick=20,
    )


def test_serve_sweep_completes_offered_load(sweep, results_dir):
    lines = [format_table(
        [r.as_row() for r in sweep],
        title=f"serve shard sweep ({_env_sessions()} sessions/point)",
    )]
    for r in sweep:
        per_shard = ", ".join(
            f"shard {label}: {q * 1e3:.2f}ms"
            for label, q in sorted(r.tick_p95_by_shard.items())
        )
        lines.append(f"{r.shards}-shard tick p95 — {per_shard or '(no samples)'}")
    save_result("serve_shard_sweep.txt", "\n".join(lines))
    for r in sweep:
        assert r.report.drained, f"{r.shards}-shard run failed to drain"
        assert r.report.completed == r.report.offered
        assert r.report.rejected == 0
        assert r.report.failed == 0


def test_serve_sweep_records_per_shard_latency(sweep):
    for r in sweep:
        assert r.tick_p95_s is not None, "tick histogram recorded no samples"
        assert len(r.tick_p95_by_shard) == r.shards
        # Sessions must actually land on every shard at this load.
        active_shards = {k for k, v in r.report.completed_by_shard.items() if v}
        assert len(active_shards) == r.shards


def test_serve_scales_with_shard_count(sweep):
    """The acceptance bar: >= 2x sessions/sec going from 1 to 4 shards."""
    by_shards = {r.shards: r for r in sweep}
    if 1 not in by_shards or 4 not in by_shards:
        pytest.skip("sweep does not include both 1 and 4 shards")
    one = by_shards[1].report.sessions_per_second
    four = by_shards[4].report.sessions_per_second
    assert one > 0
    speedup = four / one
    assert speedup >= 2.0, f"1->4 shard speedup only {speedup:.2f}x"


def test_serve_emits_machine_readable_result(sweep, results_dir):
    """BENCH_serve.json: throughput + p95 per sweep point, for tooling."""
    payload = {
        "benchmark": "serve",
        "sessions_per_point": _env_sessions(),
        "points": [
            {
                "shards": r.shards,
                "throughput_sessions_per_s": r.report.sessions_per_second,
                "p95_tick_s": r.tick_p95_s,
                "completed": r.report.completed,
                "rejected": r.report.rejected,
            }
            for r in sweep
        ],
    }
    path = save_json("BENCH_serve.json", payload)
    assert path.is_file()
    for point in payload["points"]:
        assert point["throughput_sessions_per_s"] > 0
        assert point["p95_tick_s"] is not None


def test_serve_slo_rules_pass(sweep):
    """The repro_serve_* rules of examples/slo.toml hold under the sweep."""
    rules = [
        r for r in obs.parse_slo_file(SLO_FILE)
        if (r.metric or r.numerator or "").startswith("repro_serve_")
    ]
    assert rules, "examples/slo.toml lost its serve rules"
    results, all_ok = obs.evaluate_slos(rules, obs.snapshot())
    breached = [r.rule.title for r in results if not r.ok]
    assert all_ok, f"serve SLO rules breached: {breached}"
