"""Disabled-path overhead of the fault-injection hooks.

The faultline package makes the same promise the obs layer does: with
no plan installed, a hook site is one module-attribute load and a falsy
branch — the serving, gateway and WAL hot paths must not pay for the
chaos machinery they are not using.  This bench holds that to numbers,
with the same generous ceilings as ``bench_obs_overhead`` so shared-CI
noise cannot manufacture a failure:

* the bare disabled hook (``if faultline.ACTIVE: ...``) stays within
  the disabled-instrumentation ceiling;
* an *installed but idle* injector — hit counting under the lock with
  no trigger match — stays cheap enough for per-frame call sites;
* a serve burst under an armed-but-never-firing plan still completes
  everything (the hooks observe, they do not disturb).
"""

import time

import pytest

from conftest import save_result
from repro import faultline
from repro.faultline import FaultPlan, FaultSpec
from repro.reporting import format_table

#: Same ceiling as the disabled obs sites: one attribute load + branch
#: (~100 ns) with two orders of magnitude of CI-noise headroom.
DISABLED_CALL_CEILING_S = 10e-6

#: An installed-but-idle fire(): a lock, a dict bump, a tuple scan.
#: Far under a WAL write or a frame dispatch, which is all that matters.
IDLE_FIRE_CEILING_S = 50e-6

REPS = 20_000


@pytest.fixture(autouse=True)
def no_plan():
    """Start and finish with no injector installed."""
    faultline.uninstall()
    yield
    faultline.uninstall()


def _per_call(fn, reps=REPS, repeats=5):
    """Best-of-N mean seconds per call (best-of defeats scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(reps)
        best = min(best, time.perf_counter() - t0)
    return best / reps


def _never_firing_plan() -> FaultPlan:
    """Armed on every site, triggered on a hit no bench will reach."""
    return FaultPlan(
        name="bench-idle",
        specs=tuple(
            FaultSpec(site, kinds[0], at=10**9)
            for site, kinds in faultline.SITES.items()
        ),
    )


def _bench_disabled_hook(reps):
    # Verbatim shape of every production hook site.
    for _ in range(reps):
        if faultline.ACTIVE:
            faultline.fire("serve.tick")


def _bench_idle_fire(reps):
    for _ in range(reps):
        if faultline.ACTIVE:
            faultline.fire("serve.tick")


def test_disabled_hook_stays_within_noise(results_dir):
    assert faultline.ACTIVE is False
    per_call = _per_call(_bench_disabled_hook)
    save_result(
        "faultline_disabled_overhead.txt",
        format_table(
            [{"site": "disabled hook", "ns_per_call": f"{per_call * 1e9:.1f}"}],
            title="Disabled-path faultline overhead (best-of-5)",
        ),
    )
    assert per_call < DISABLED_CALL_CEILING_S, (
        f"disabled faultline hook costs {per_call * 1e6:.2f} µs/call "
        f"(ceiling {DISABLED_CALL_CEILING_S * 1e6:.0f} µs) - something "
        "runs before the ACTIVE check"
    )


def test_installed_idle_fire_is_cheap(results_dir):
    injector = faultline.install(_never_firing_plan())
    per_call = _per_call(_bench_idle_fire)
    hits = injector.hits["serve.tick"]
    faultline.uninstall()
    assert hits >= REPS  # the hook really went through the injector
    assert injector.injected_total == 0
    save_result(
        "faultline_idle_overhead.txt",
        format_table(
            [{"site": "installed, no trigger",
              "ns_per_call": f"{per_call * 1e9:.1f}"}],
            title="Armed-but-idle faultline overhead (best-of-5)",
        ),
    )
    assert per_call < IDLE_FIRE_CEILING_S, (
        f"armed-but-idle fire() costs {per_call * 1e6:.2f} µs/call "
        f"(ceiling {IDLE_FIRE_CEILING_S * 1e6:.0f} µs)"
    )


def test_armed_plan_does_not_disturb_a_serve_burst():
    """Hooks observe; an installed plan that never triggers must leave
    a serve burst bit-for-bit as successful as an uninstalled one."""
    from repro.core import fetch_quest_game
    from repro.serve import LoadGenerator, ServeConfig, SessionManager
    from repro.students import cohort_scripts

    game = fetch_quest_game(n_quests=2, title="faultline idle").build()
    scripts = cohort_scripts(game, 6, seed=11)
    faultline.install(_never_firing_plan())
    try:
        with SessionManager(ServeConfig(
            n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50,
        )) as manager:
            report = LoadGenerator(manager, game, scripts).run(
                24, drain_timeout=30.0
            )
    finally:
        injector = faultline.uninstall()
    assert report.drained
    assert report.completed == 24
    assert report.failed == 0
    assert injector is not None and injector.injected_total == 0
    # the hooks really saw the burst go by
    assert injector.hits.get("serve.tick", 0) > 0
    assert injector.hits.get("serve.admit", 0) > 0
