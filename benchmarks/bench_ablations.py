"""Ablations for the design choices DESIGN.md calls out.

* shot-detector metric: histogram vs pixel absdiff (accuracy + speed);
* prefetch depth: successors at depth 1 vs 2 vs all;
* condition compilation: parse-once-evaluate-many vs parse-per-eval;
* compositor layer cache: cached premultiplied layers vs rebuild-per-frame.
"""

import time

import numpy as np

from conftest import save_result
from repro.core import fetch_quest_game
from repro.events.conditions import compile_condition, evaluate, parse_condition
from repro.graph import Scenario, build_graph
from repro.net import Channel, StreamSession
from repro.objects import ImageObject, RectHotspot
from repro.reporting import format_table
from repro.runtime import Compositor, GameState, UiLayout
from repro.video import (
    DetectorConfig,
    Frame,
    FrameSize,
    VideoReader,
    detect_shots,
    generate_clip,
    random_shot_script,
    score_detection,
)

SIZE = FrameSize(160, 120)


# ----------------------------------------------------------------------
# Ablation 1: detector metric
# ----------------------------------------------------------------------

def test_ablation_detector_metric(benchmark, results_dir):
    clips = []
    for seed in (21, 22, 23, 24):
        rng = np.random.default_rng(seed)
        clips.append(generate_clip(
            SIZE, random_shot_script(4, rng, size=SIZE,
                                     min_duration=12, max_duration=18),
            seed=seed,
        ))
    rows = []
    f1_by_metric = {}
    for metric in ("histogram", "pixel"):
        cfg = DetectorConfig(metric=metric)  # type: ignore[arg-type]
        t0 = time.perf_counter()
        f1s = []
        for clip in clips:
            detected = detect_shots(clip.frames, cfg)
            _, _, f1 = score_detection(detected, clip.boundaries, tolerance=2)
            f1s.append(f1)
        dt = time.perf_counter() - t0
        f1_by_metric[metric] = float(np.mean(f1s))
        rows.append({"metric": metric, "mean_f1": float(np.mean(f1s)),
                     "seconds": dt})
    save_result("ablation_detector_metric.txt",
                format_table(rows, title="Ablation: shot-detector metric"))
    # Histogram is the default because it is at least as accurate.
    assert f1_by_metric["histogram"] >= f1_by_metric["pixel"] - 1e-9

    cfg = DetectorConfig(metric="histogram")
    benchmark(detect_shots, clips[0].frames, cfg)


# ----------------------------------------------------------------------
# Ablation 2: prefetch depth
# ----------------------------------------------------------------------

def test_ablation_prefetch_depth(benchmark, results_dir):
    game = fetch_quest_game(n_quests=5, size=SIZE).build()
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    path = [("hub", 15.0)]
    for k in range(5):
        path += [(f"place-{k}", 12.0), ("hub", 8.0)]

    rows = []
    by_depth = {}
    configs = [("successors", 1), ("successors", 2), ("all", 1)]
    for policy, depth in configs:
        session = StreamSession(reader, graph, Channel(300_000, 0.03),
                                policy=policy, prefetch_depth=depth)
        stats = session.play_path(path)
        key = f"{policy}@{depth}" if policy == "successors" else "all"
        by_depth[key] = stats
        rows.append({
            "policy": key,
            "mean_delay_s": stats.mean_startup_delay,
            "instant_frac": stats.instant_switch_fraction,
            "wasted_MB": stats.bytes_wasted / 1e6,
        })
    save_result("ablation_prefetch_depth.txt",
                format_table(rows, title="Ablation: prefetch aggressiveness"))
    assert (by_depth["successors@2"].mean_startup_delay
            <= by_depth["successors@1"].mean_startup_delay + 1e-9)

    benchmark(lambda: StreamSession(
        reader, graph, Channel(300_000, 0.03), policy="successors"
    ).play_path(path))


# ----------------------------------------------------------------------
# Ablation 3: condition compilation
# ----------------------------------------------------------------------

class _Ctx:
    def has_item(self, i): return i == "ram"
    def item_count(self, i): return 1
    def get_flag(self, n): return n == "go"
    def has_visited(self, s): return True
    def get_score(self): return 42
    def get_prop(self, o, k): return "broken"


SRC = "has('ram') and not flag('done') and prop('pc','state') == 'broken' and score >= 10"


def test_ablation_condition_compile_cache(benchmark, results_dir):
    ctx = _Ctx()
    n = 3000
    compiled = compile_condition(SRC)

    t0 = time.perf_counter()
    for _ in range(n):
        evaluate(parse_condition(SRC), ctx)
    t_parse_each = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        compiled(ctx)
    t_compiled = time.perf_counter() - t0

    rows = [
        {"strategy": "parse_per_eval", "evals": n, "seconds": t_parse_each},
        {"strategy": "compile_once", "evals": n, "seconds": t_compiled,
         "speedup": t_parse_each / t_compiled},
    ]
    save_result("ablation_condition_cache.txt",
                format_table(rows, title="Ablation: condition compile-once"))
    assert t_compiled < t_parse_each

    benchmark(compiled, ctx)


# ----------------------------------------------------------------------
# Ablation 4: compositor layer cache
# ----------------------------------------------------------------------

def test_ablation_compositor_cache(benchmark, results_dir):
    layout = UiLayout.default_for(SIZE.width, SIZE.height)
    base = Frame.blank(SIZE, (70, 70, 90))
    sc = Scenario("s", "S", 0)
    rng = np.random.default_rng(4)
    for k in range(16):
        sc.add_object(ImageObject(
            object_id=f"o{k}", name=f"o{k}",
            hotspot=RectHotspot(float(rng.integers(0, 130)),
                                float(rng.integers(0, 70)), 24, 18),
        ))
    state = GameState("s")
    reps = 80

    comp = Compositor(layout)
    comp.compose(base, sc, state)
    t0 = time.perf_counter()
    for _ in range(reps):
        comp.compose(base, sc, state)
    t_cached = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        comp.invalidate()
        comp.compose(base, sc, state)
    t_uncached = time.perf_counter() - t0

    rows = [
        {"strategy": "cached_layers", "fps": reps / t_cached},
        {"strategy": "rebuild_per_frame", "fps": reps / t_uncached,
         "slowdown": t_uncached / t_cached},
    ]
    save_result("ablation_compositor_cache.txt",
                format_table(rows, title="Ablation: compositor layer cache"))
    assert t_cached < t_uncached

    benchmark(comp.compose, base, sc, state)


# ----------------------------------------------------------------------
# Ablation 5: segment-cache eviction policy
# ----------------------------------------------------------------------

def test_ablation_cache_eviction(benchmark, results_dir):
    """LRU vs FIFO vs graph-distance eviction on a hub-and-spoke tour.

    The graph policy uses structure only this platform has (the scenario
    graph); the ablation shows whether that information buys anything
    over plain recency.
    """
    from repro.net import EVICTION_POLICIES, simulate_cached_playback
    from repro.video import VideoReader

    game = fetch_quest_game(n_quests=4, size=SIZE, noise=4).build()
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    tour = [("hub", 10.0)]
    for k in range(4):
        tour += [(f"place-{k}", 10.0), ("hub", 5.0)]
    tour *= 2  # revisits make caching matter
    total = sum(e.byte_size for e in reader.index)

    rows = []
    by_policy = {}
    for frac in (0.5, 0.75):
        cap = int(total * frac)
        for policy in EVICTION_POLICIES:
            stats = simulate_cached_playback(reader, graph, tour, cap, policy)
            by_policy[(frac, policy)] = stats
            rows.append({
                "capacity": f"{frac:.0%}",
                "policy": policy,
                "hit_rate": stats.hit_rate,
                "refetches": stats.refetches,
                "evictions": stats.evictions,
            })
    save_result("ablation_cache_eviction.txt",
                format_table(rows, title="Ablation: segment-cache eviction"))
    for frac in (0.5, 0.75):
        assert (by_policy[(frac, "lru")].refetches
                <= by_policy[(frac, "fifo")].refetches)

    benchmark(lambda: simulate_cached_playback(
        reader, graph, tour, int(total * 0.5), "lru"))


# ----------------------------------------------------------------------
# Ablation 6: template difficulty landscape
# ----------------------------------------------------------------------

def test_ablation_difficulty_landscape(benchmark, results_dir):
    """Difficulty estimates across template sizes: the estimator must
    rank bigger games harder and keep labels stable across seeds."""
    from repro.core import estimate_difficulty, exploration_game, quiz_game

    small = FrameSize(64, 48)
    games = {
        "quest-1": fetch_quest_game(1, size=small).build(),
        "quest-3": fetch_quest_game(3, size=small).build(),
        "quiz-2": quiz_game([("Q1?", ["a", "b"], 0), ("Q2?", ["a", "b"], 1)],
                            size=small).build(),
        "museum-3": exploration_game(3, size=small).build(),
    }
    rows = []
    scores = {}
    for name, game in games.items():
        r = estimate_difficulty(game, n_rollouts=8, max_actions=200)
        scores[name] = r.score
        rows.append({
            "game": name, "solution": r.solution_length,
            "states": r.states_explored,
            "distractors": r.distractor_ratio,
            "random_moves": r.mean_random_moves,
            "score": r.score, "label": r.label,
        })
    save_result("ablation_difficulty.txt",
                format_table(rows, title="Ablation: template difficulty landscape"))
    assert scores["quest-3"] > scores["quest-1"]
    # Label stability across estimator seeds.
    labels = {
        estimate_difficulty(games["quest-3"], seed=s, n_rollouts=8,
                            max_actions=200).label
        for s in (0, 1, 2)
    }
    assert len(labels) == 1

    benchmark.pedantic(
        lambda: estimate_difficulty(games["quest-1"], n_rollouts=4,
                                    max_actions=120),
        rounds=2, iterations=1,
    )


# ----------------------------------------------------------------------
# Ablation 7: control device vs engagement
# ----------------------------------------------------------------------

def test_ablation_device_engagement(benchmark, results_dir):
    """The same cohort on different devices: slower input hardware costs
    engagement — the mechanical reason §3.1 picks mouse and keyboard."""
    from repro.students import DEVICE_TIME_FACTORS, sample_profile, simulate_play

    game = fetch_quest_game(3, size=FrameSize(64, 48)).build()
    rows = []
    completion = {}
    for device in sorted(DEVICE_TIME_FACTORS):
        rng = np.random.default_rng(99)
        done = 0
        attn = []
        for k in range(20):
            p = sample_profile(f"s{k}", rng)
            res = simulate_play(game, p, rng, max_seconds=420, device=device)
            done += res.completed
            attn.append(res.final_attention)
        completion[device] = done / 20
        rows.append({
            "device": device,
            "time_factor": DEVICE_TIME_FACTORS[device],
            "completion": done / 20,
            "mean_final_attention": float(np.mean(attn)),
        })
    save_result("ablation_device_engagement.txt",
                format_table(rows, title="Ablation: device vs engagement"))
    assert completion["keyboard_mouse"] >= completion["remote"]

    rng = np.random.default_rng(1)
    p = sample_profile("bench", rng, archetype="achiever")
    benchmark.pedantic(
        lambda: simulate_play(game, p, np.random.default_rng(1),
                              max_seconds=300),
        rounds=3, iterations=1,
    )
