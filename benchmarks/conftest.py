"""Shared benchmark fixtures: result artifact directory, standard game.

When observability is on (``REPRO_OBS=1``), the session-finish hook
writes the accumulated metrics snapshot to
``results/obs_snapshot.prom`` — the CI bench job uploads it as a build
artifact, so every CI run leaves an inspectable record of what the
benchmarks actually exercised.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_sessionfinish(session, exitstatus):
    from repro import obs

    if exitstatus != 0:
        # Leave the black box behind for the CI failure artifact.
        recorder = obs.get_flight_recorder()
        if len(recorder) or obs.get_tracer().finished:
            path = Path("pytest-flight-dump.json")
            recorder.dump(path, reason=f"pytest-exit-{exitstatus}")
            print(f"\nobs: wrote flight dump to {path}")
    if not obs.enabled():
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "obs_snapshot.prom"
    path.write_text(obs.render_prometheus(obs.snapshot()))
    print(f"\nobs: wrote metrics snapshot to {path}")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop the tables/figures they regenerate."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, content: str) -> Path:
    """Write one regenerated table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    print(f"\n=== {name} ===\n{content}")
    return path


def save_json(name: str, payload: dict) -> Path:
    """Write one machine-readable benchmark result (``BENCH_*.json``).

    The CI bench-smoke job uploads these alongside the obs snapshot so
    run-over-run throughput/latency history is diffable by tooling, not
    just readable by humans.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
    return path
