"""Shared benchmark fixtures: result artifact directory, standard game."""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop the tables/figures they regenerate."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, content: str) -> Path:
    """Write one regenerated table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    print(f"\n=== {name} ===\n{content}")
    return path
