"""E6: engagement and knowledge delivery vs traditional e-learning.

The paper claims (without measuring) that "game-based learning systems
provide more attraction to the students" (§2.2) and that students "get
concepts from the game play" (§4.3).  This bench regenerates the
comparison table on matched simulated cohorts and asserts the claim's
*shape*: the VGBL platform beats both baselines on dropout, engagement
and knowledge gain, and the effect survives across student archetypes.
"""

import pytest

from conftest import save_result
from repro.baselines import run_comparison
from repro.core import exploration_game
from repro.events import Trigger
from repro.learning import DeliveryPoint, KnowledgeItem, KnowledgeMap
from repro.reporting import format_table
from repro.students import run_vgbl_cohort
from repro.video import FrameSize

SIZE = FrameSize(120, 90)
N_EXHIBITS = 5
N_STUDENTS = 60
SEED = 2007


@pytest.fixture(scope="module")
def game():
    return exploration_game(n_exhibits=N_EXHIBITS, size=SIZE,
                            title="Museum").build()


@pytest.fixture(scope="module")
def kmap(game):
    kmap = KnowledgeMap()
    for k in range(N_EXHIBITS):
        examine = [b.binding_id for b in game.events
                   if b.trigger == Trigger.EXAMINE
                   and b.object_id == f"artifact-{k}"]
        kmap.add(
            KnowledgeItem(f"k-exhibit-{k}", f"what artifact {k} demonstrates"),
            [DeliveryPoint(kind="binding", ref=examine[0]),
             DeliveryPoint(kind="enter", ref=f"exhibit-{k}")],
        )
    kmap.add(KnowledgeItem("k-museum", "how the museum is organised", weight=0.5),
             [DeliveryPoint(kind="enter", ref="hall")])
    return kmap


def test_e6_platform_comparison_table(benchmark, game, kmap, results_dir):
    results = run_comparison(game, kmap, n_students=N_STUDENTS, seed=SEED,
                             lesson_duration=600.0)
    rows = [s.as_row() for s in results.values()]
    save_result("e6_platform_comparison.txt",
                format_table(rows, title=f"E6: matched cohorts (n={N_STUDENTS})"))

    vgbl = results["vgbl"]
    lin = results["linear_video"]
    sli = results["slideshow"]
    # The paper's engagement claim, in testable form:
    assert vgbl.dropout_rate < min(lin.dropout_rate, sli.dropout_rate)
    assert vgbl.mean_final_engagement > max(lin.mean_final_engagement,
                                            sli.mean_final_engagement)
    # Knowledge delivery through decision-making beats passive exposure:
    assert vgbl.mean_knowledge_gain > max(lin.mean_knowledge_gain,
                                          sli.mean_knowledge_gain)
    # The gap is substantive, not a tie-break (CIs separated):
    assert (vgbl.mean_knowledge_gain - vgbl.ci_knowledge_gain
            > lin.mean_knowledge_gain + lin.ci_knowledge_gain)
    # Interactivity ordering: game >> slideshow >> video.
    assert vgbl.mean_interactions > sli.mean_interactions > lin.mean_interactions

    benchmark(lambda: run_vgbl_cohort(game, kmap, 10, seed=1))


def test_e6_archetype_breakdown(benchmark, game, kmap, results_dir):
    """Per-archetype cohorts: the game helps strugglers the most in
    relative dropout terms (the motivation in §1)."""
    from repro.baselines import run_linear_cohort

    rows = []
    for archetype in ("explorer", "achiever", "struggler"):
        vg, _ = run_vgbl_cohort(game, kmap, 30, seed=SEED, archetype=archetype)
        rows.append({
            "archetype": archetype, "platform": "vgbl",
            "dropout": vg.dropout_rate, "gain": vg.mean_knowledge_gain,
            "engagement": vg.mean_final_engagement,
        })
    lin, _ = run_linear_cohort(kmap, 600.0, 30, seed=SEED)
    rows.append({
        "archetype": "mixed", "platform": "linear_video",
        "dropout": lin.dropout_rate, "gain": lin.mean_knowledge_gain,
        "engagement": lin.mean_final_engagement,
    })
    save_result("e6_archetype_breakdown.txt",
                format_table(rows, title="E6: outcomes by student archetype"))
    by_arch = {r["archetype"]: r for r in rows}
    assert by_arch["struggler"]["dropout"] <= 0.5
    assert by_arch["achiever"]["gain"] >= by_arch["struggler"]["gain"] - 0.15

    benchmark.pedantic(
        lambda: run_vgbl_cohort(game, kmap, 10, seed=1, archetype="achiever"),
        rounds=2, iterations=1,
    )


def test_e6_seed_robustness(benchmark, game, kmap, results_dir):
    """The ordering must hold across independent cohort draws."""
    wins = 0
    rows = []
    for seed in (1, 2, 3):
        results = run_comparison(game, kmap, n_students=30, seed=seed,
                                 lesson_duration=600.0)
        vg = results["vgbl"].mean_knowledge_gain
        best_baseline = max(results["linear_video"].mean_knowledge_gain,
                            results["slideshow"].mean_knowledge_gain)
        wins += vg > best_baseline
        rows.append({"seed": seed, "vgbl_gain": vg,
                     "best_baseline_gain": best_baseline})
    save_result("e6_seed_robustness.txt",
                format_table(rows, title="E6: gain ordering across seeds"))
    assert wins == 3

    benchmark.pedantic(
        lambda: run_comparison(game, kmap, n_students=10, seed=5,
                               lesson_duration=600.0),
        rounds=1, iterations=1,
    )
