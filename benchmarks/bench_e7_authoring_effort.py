"""E7: "content providers can produce educational games without
understanding details of computer graphics, video and even flash
technologies" (§1).

Regenerates the authoring-effort table for the same classroom-repair
game produced three ways — wizard, raw editors, programmer-scripted —
and sweeps the expertise weights to show the ranking is insensitive to
the exact weight choices.
"""


from conftest import save_result
from repro.baselines import build_scripted_classroom_game
from repro.core import (
    AuthoringLedger,
    GameProject,
    GameWizard,
    ObjectEditor,
    ScenarioEditor,
    solve,
)
from repro.core.templates import scene_footage
from repro.events import AwardBonus, EndGame, SetProperty, ShowText, TakeItem, Trigger
from repro.objects import RectHotspot
from repro.reporting import format_table
from repro.runtime import Dialogue
from repro.video import FrameSize

SIZE = FrameSize(160, 120)


def _wizard_path():
    wiz = (
        GameWizard("Fix the Computer", author="teacher")
        .scene("classroom", "Classroom", scene_footage(SIZE, seed=1))
        .scene("market", "Market", scene_footage(SIZE, seed=2))
        .helper("classroom", "teacher", "Teacher", at=(5, 20, 14, 30),
                lines=["The computer is broken.", "Find a part at the market!"])
        .prop("classroom", "computer", "Computer", at=(60, 40, 30, 30),
              description="It will not boot.", properties={"state": "broken"})
        .item("market", "ram", "RAM module", at=(70, 70, 10, 10))
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(item="ram", target="computer",
                     success_text="The computer boots!", bonus=20, win=True)
    )
    return wiz.build(require_valid=False), wiz.ledger


def _raw_editor_path():
    ledger = AuthoringLedger()
    project = GameProject("Fix the Computer (editors)")
    scenes = ScenarioEditor(project, ledger)
    objects = ObjectEditor(project, ledger)
    scenes.import_footage("c", scene_footage(SIZE, seed=1))
    scenes.import_footage("m", scene_footage(SIZE, seed=2))
    scenes.commit_whole("c")
    scenes.commit_whole("m")
    scenes.create_scenario("classroom", "Classroom", "c")
    scenes.create_scenario("market", "Market", "m")
    objects.place_npc("classroom", "teacher", "Teacher", RectHotspot(5, 20, 14, 30),
                      dialogue=Dialogue.linear("d", ["The computer is broken."]))
    objects.place_image("classroom", "computer", "Computer",
                        RectHotspot(60, 40, 30, 30), description="Broken.")
    objects.set_property("computer", "state", "broken")
    objects.place_item("market", "ram", "RAM", RectHotspot(70, 70, 10, 10))
    objects.link_scenes("classroom", "market", "To market")
    objects.link_scenes("market", "classroom", "Back")
    objects.bind("classroom", Trigger.USE_ITEM, object_id="computer",
                 item_id="ram", once=True,
                 actions=[SetProperty(object_id="computer", key="state", value="fixed"),
                          TakeItem(item_id="ram"),
                          AwardBonus(points=20),
                          ShowText(text="Fixed!"),
                          EndGame(outcome="won")])
    return project.compile(), ledger


def test_e7_effort_table(benchmark, results_dir):
    paths = {
        "wizard": _wizard_path(),
        "raw_editors": _raw_editor_path(),
        "programmer": build_scripted_classroom_game(size=SIZE),
    }
    rows = []
    costs = {}
    for name, (game, ledger) in paths.items():
        # Equivalence first: every path must yield a winnable game with
        # the same minimal solution length.
        result = solve(game)
        assert result.winnable, f"{name} path produced an unwinnable game"
        report = ledger.report()
        costs[name] = report.weighted_cost
        rows.append({
            "workflow": name,
            "total_ops": report.total_ops,
            "weighted_cost": report.weighted_cost,
            "max_skill": report.max_skill_required,
            "solution_moves": len(result.winning_script),
            **{f"ops_{s}": report.ops_by_skill.get(s, 0)
               for s in ("novice", "editor", "programmer", "specialist")},
        })
    save_result("e7_authoring_effort.txt",
                format_table(rows, title="E7: effort to author the classroom game"))

    assert costs["wizard"] < costs["raw_editors"] < costs["programmer"]
    assert costs["programmer"] / costs["wizard"] > 3.0
    by_name = {r["workflow"]: r for r in rows}
    assert by_name["wizard"]["max_skill"] == "novice"
    assert by_name["programmer"]["max_skill"] == "specialist"
    # All three produce the same game, structurally.
    lengths = {r["solution_moves"] for r in rows}
    assert len(lengths) == 1

    benchmark(_wizard_path)


def test_e7_weight_sensitivity(benchmark, results_dir):
    """Sweep the expertise weights: the ranking must not depend on them."""
    sweeps = [
        {"novice": 1, "editor": 1, "programmer": 1, "specialist": 1},     # flat
        {"novice": 1, "editor": 2, "programmer": 4, "specialist": 8},     # mild
        {"novice": 1, "editor": 5, "programmer": 50, "specialist": 200},  # steep
    ]
    rows = []
    for weights in sweeps:
        _, wiz_ledger = _wizard_path()
        _, raw_ledger = _raw_editor_path()
        _, dev_ledger = build_scripted_classroom_game(size=SIZE)
        costs = {}
        for name, ledger in [("wizard", wiz_ledger), ("raw_editors", raw_ledger),
                             ("programmer", dev_ledger)]:
            relabelled = AuthoringLedger(weights={k: float(v) for k, v in weights.items()})
            for op in ledger.ops:
                relabelled.record(op.name, op.skill, op.detail)
            costs[name] = relabelled.report().weighted_cost
        rows.append({"weights": str(weights), **costs,
                     "ordering_holds": costs["wizard"] <= costs["raw_editors"]
                     <= costs["programmer"]})
    save_result("e7_weight_sensitivity.txt",
                format_table(rows, title="E7: ranking under weight sweeps"))
    assert all(r["ordering_holds"] for r in rows)

    benchmark.pedantic(_raw_editor_path, rounds=2, iterations=1)
