"""Gateway bench: shard-count sweep measured through real TCP sockets.

Offers a fixed load of cohort-scripted sessions to a loopback
``repro.gateway`` server fronting session managers of increasing shard
count, and reports completed sessions per second plus the p95 PING
frame round trip observed from the client side.  The headline claim
this file defends: at a fixed offered load, going from 1 shard to 4
shards at least doubles sessions/second *through the gateway* — i.e.
the wire edge (framing, admission acks, END push) does not serialise
what the shards parallelise.

Tunable from the environment so the CI gateway-smoke step can run a
small, fast sweep:

``REPRO_GATEWAY_BENCH_SHARDS``
    Comma-separated shard counts to sweep (default ``1,2,4``).
``REPRO_GATEWAY_BENCH_SESSIONS``
    Sessions offered per sweep point (default ``120``).
``REPRO_GATEWAY_BENCH_CLIENTS``
    Concurrent client connections per sweep point (default ``4``).

The sweep results are also gated in-process against the
``repro_gateway_*`` rules of ``examples/slo.toml`` — the same rules
``repro gateway bench --slo`` and ``repro obs check`` enforce.
"""

import os
from pathlib import Path

import pytest

from conftest import save_json, save_result
from repro import obs
from repro.core import fetch_quest_game
from repro.gateway import run_gateway_benchmark
from repro.reporting import format_table
from repro.students import cohort_scripts

SLO_FILE = Path(__file__).parent.parent / "examples" / "slo.toml"


def _env_shards() -> list:
    raw = os.environ.get("REPRO_GATEWAY_BENCH_SHARDS", "1,2,4")
    return [int(s) for s in raw.split(",") if s.strip()]


def _env_sessions() -> int:
    return int(os.environ.get("REPRO_GATEWAY_BENCH_SESSIONS", "120"))


def _env_clients() -> int:
    return int(os.environ.get("REPRO_GATEWAY_BENCH_CLIENTS", "4"))


@pytest.fixture(scope="module")
def sweep():
    """One socket shard sweep at fixed load, shared by every assertion."""
    obs.enable()  # handshake/RTT histograms feed the SLO rules
    game = fetch_quest_game(n_quests=2, title="gateway bench").build()
    scripts = cohort_scripts(game, 12, seed=2007)
    return run_gateway_benchmark(
        game,
        _env_shards(),
        sessions=_env_sessions(),
        scripts=scripts,
        clients=_env_clients(),
        tick_interval_s=0.01,
        max_steps_per_tick=20,
    )


def test_gateway_sweep_completes_offered_load(sweep, results_dir):
    save_result(
        "gateway_shard_sweep.txt",
        format_table(
            [r.as_row() for r in sweep],
            title=(
                f"gateway shard sweep ({_env_sessions()} sessions/point, "
                f"{_env_clients()} clients)"
            ),
        ),
    )
    for r in sweep:
        assert r.report.drained, f"{r.shards}-shard run failed to drain"
        assert r.report.completed == r.report.offered
        assert r.report.rejected == 0
        assert r.report.failed == 0


def test_gateway_sweep_records_frame_rtt(sweep):
    for r in sweep:
        rtt = r.report.rtt_p95_s
        assert rtt is not None, "load run recorded no PING round trips"
        # Loopback frame RTT should be well under a tick interval.
        assert rtt < 1.0, f"loopback p95 RTT {rtt:.3f}s"


def test_gateway_scales_with_shard_count(sweep):
    """The acceptance bar: >= 2x sessions/sec going 1 -> 4 shards."""
    by_shards = {r.shards: r for r in sweep}
    if 1 not in by_shards or 4 not in by_shards:
        pytest.skip("sweep does not include both 1 and 4 shards")
    one = by_shards[1].report.sessions_per_second
    four = by_shards[4].report.sessions_per_second
    assert one > 0
    speedup = four / one
    assert speedup >= 2.0, f"1->4 shard speedup only {speedup:.2f}x"


def test_gateway_emits_machine_readable_result(sweep, results_dir):
    """BENCH_gateway.json: throughput + p95 frame RTT, for tooling."""
    payload = {
        "benchmark": "gateway",
        "sessions_per_point": _env_sessions(),
        "clients": _env_clients(),
        "points": [
            {
                "shards": r.shards,
                "throughput_sessions_per_s": r.report.sessions_per_second,
                "p95_frame_rtt_s": r.report.rtt_p95_s,
                "completed": r.report.completed,
                "rejected": r.report.rejected,
            }
            for r in sweep
        ],
    }
    path = save_json("BENCH_gateway.json", payload)
    assert path.is_file()
    for point in payload["points"]:
        assert point["throughput_sessions_per_s"] > 0
        assert point["p95_frame_rtt_s"] is not None


def test_gateway_slo_rules_pass(sweep):
    """The repro_gateway_* rules of examples/slo.toml hold under load."""
    rules = [
        r for r in obs.parse_slo_file(SLO_FILE)
        if (r.metric or r.numerator or "").startswith("repro_gateway_")
    ]
    assert rules, "examples/slo.toml lost its gateway rules"
    results, all_ok = obs.evaluate_slos(rules, obs.snapshot())
    breached = [r.rule.title for r in results if not r.ok]
    assert all_ok, f"gateway SLO rules breached: {breached}"


def test_trace_attribution_accounts_for_client_latency(results_dir, tmp_path):
    """Acceptance: phase breakdowns explain client-observed latency.

    Runs traced sessions against a persisted gateway with slow ticks
    (so end-to-end latency is tens of milliseconds and loopback transit
    is noise), fetches each request's timeline over the live
    ``/trace/<id>`` telemetry endpoint, and requires the phase
    durations (accept + queue wait + shard step + fsync wait + flush)
    to sum to within 10% of the latency the *client* measured between
    SUBMIT and END.  The rendered waterfalls are saved as the
    ``trace_waterfall.txt`` CI artifact.
    """
    import asyncio
    import json
    import time
    import urllib.request

    from repro.gateway import GatewayConfig, GatewayServer, GatewayThread
    from repro.gateway.client import GatewayClient
    from repro.persist import PersistenceConfig
    from repro.reporting import render_waterfall
    from repro.serve import ServeConfig, SessionManager

    obs.enable()
    game = fetch_quest_game(n_quests=2, title="trace acceptance").build()
    scripts = cohort_scripts(game, 4, seed=31)
    manager = SessionManager(ServeConfig(
        n_shards=2,
        tick_interval_s=0.02,  # deliberate: latency >> transit noise
        max_steps_per_tick=4,
        persistence=PersistenceConfig(
            directory=tmp_path / "wal", group_window_s=0.002,
        ),
    ))
    server = GatewayServer(
        manager, game, config=GatewayConfig(telemetry_port=0),
    )

    async def _run_traced(host: str, port: int) -> list:
        client = GatewayClient(
            host, port, trace_sample=1.0, request_timeout_s=60.0,
        )
        await client.connect()
        observed = []
        try:
            for k, script in enumerate(scripts):
                pid = f"{script.player_id}#t{k}"
                t0 = time.perf_counter()
                await client.submit(pid, script.ops, dt=script.dt)
                trace_id = client.trace_for(pid)
                await client.wait_end(pid, timeout=60.0)
                observed.append((trace_id, time.perf_counter() - t0))
        finally:
            await client.close()
        return observed

    with GatewayThread(server) as handle:
        tel_port = handle.telemetry_port
        assert tel_port is not None, "telemetry endpoint did not bind"
        observed = asyncio.run(_run_traced(handle.host, handle.port))
        timelines = []
        for trace_id, latency in observed:
            assert trace_id is not None, "submission was not trace-sampled"
            url = f"http://127.0.0.1:{tel_port}/trace/{trace_id}"
            with urllib.request.urlopen(url, timeout=10) as resp:
                timelines.append((json.loads(resp.read()), latency))

    assert timelines, "no sampled requests to check"
    waterfalls = []
    for timeline, latency in timelines:
        assert timeline["status"] == "ok"
        assert set(timeline["phase_totals"]) == {
            "accept", "queue_wait", "shard_step", "fsync_wait", "flush",
        }
        phase_sum = sum(p["duration_s"] for p in timeline["phases"])
        assert abs(phase_sum - latency) <= 0.10 * latency, (
            f"trace {timeline['trace_id']}: phases sum to "
            f"{phase_sum * 1e3:.2f}ms but the client observed "
            f"{latency * 1e3:.2f}ms SUBMIT->END"
        )
        waterfalls.append(
            render_waterfall(timeline)
            + f"\nclient-observed SUBMIT->END: {latency * 1e3:.2f}ms\n"
        )
    save_result("trace_waterfall.txt", "\n".join(waterfalls))
