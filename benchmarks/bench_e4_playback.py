"""E4: the augmented video player (§4.3) — playback pipeline costs.

Regenerates three tables:

* codec rate/quality: encoded size ratio and PSNR per codec on standard
  footage (raw / rle / delta / quant sweep);
* composition scaling: output frame rate vs number of mounted objects;
* interaction latency: time from click to the first frame of the target
  scenario (the "change the play sequence" cost), by codec.
"""

import time

import numpy as np
import pytest

from conftest import save_result
from repro.core import GameWizard
from repro.core.templates import scene_footage
from repro.graph import Scenario
from repro.objects import ImageObject, RectHotspot
from repro.reporting import format_table
from repro.runtime import Compositor, GameState, MouseClick, UiLayout
from repro.video import (
    Frame,
    FrameSize,
    available_codecs,
    generate_clip,
    get_codec,
    psnr,
    random_shot_script,
)

SIZE = FrameSize(160, 120)


def _footage(noise: int):
    rng = np.random.default_rng(17)
    script = random_shot_script(
        3, rng, size=SIZE, min_duration=16, max_duration=20, noise_level=noise
    )
    return generate_clip(SIZE, script, seed=17).frames


@pytest.fixture(scope="module")
def footage():
    return _footage(noise=0)


def test_e4_codec_rate_quality_table(benchmark, results_dir):
    """Encoded-size ratio and PSNR per codec, on clean and grainy footage.

    Grain is the RLE killer (byte runs die), which is exactly why the
    rate/quality table needs both content classes — the honest result is
    that on grainy footage only the lossy quantiser compresses.
    """
    configs = [("raw", {}), ("rle", {}), ("delta", {"intra_period": 12})] + [
        ("quant", {"bits": b}) for b in (2, 4, 6)
    ]
    rows = []
    ratios = {}
    for content, frames in [("clean", _footage(0)), ("grainy", _footage(4))]:
        raw_bytes = sum(f.nbytes for f in frames)
        for name, params in configs:
            codec = get_codec(name, **params)
            t0 = time.perf_counter()
            payloads = codec.encode_all(frames)
            t_enc = time.perf_counter() - t0
            t0 = time.perf_counter()
            decoded = codec.decode_all(payloads, SIZE)
            t_dec = time.perf_counter() - t0
            quality = psnr(decoded[len(decoded) // 2], frames[len(frames) // 2])
            label = name + (f"({params})" if params else "")
            ratio = sum(map(len, payloads)) / raw_bytes
            ratios[(content, label)] = ratio
            rows.append({
                "content": content,
                "codec": label,
                "size_ratio": ratio,
                "psnr_db": quality if quality != float("inf") else "lossless",
                "enc_Mpx_s": SIZE.pixels * len(frames) / t_enc / 1e6,
                "dec_Mpx_s": SIZE.pixels * len(frames) / t_dec / 1e6,
            })
    save_result("e4_codec_rate_quality.txt",
                format_table(rows, title="E4: codec rate/quality/throughput"))

    # Shape: on clean footage the lossless codecs compress hard (synthetic
    # gradients RLE so well that temporal delta cannot beat intra RLE —
    # delta's win is static *incompressible* scenes, asserted in the unit
    # tests); on grainy footage only quantisation compresses.
    assert ratios[("clean", "rle")] < 0.2
    assert ratios[("clean", "delta({'intra_period': 12})")] < 0.2
    assert ratios[("grainy", "rle")] > 1.0
    assert ratios[("grainy", "quant({'bits': 2})")] < 1.0
    # More quant bits -> better PSNR (per content class).
    for content in ("clean", "grainy"):
        quant_psnr = [r["psnr_db"] for r in rows
                      if r["content"] == content and r["codec"].startswith("quant")]
        assert quant_psnr == sorted(quant_psnr)

    codec = get_codec("delta")
    clean = _footage(0)
    benchmark(codec.encode_all, clean)


def test_e4_composition_scaling_table(benchmark, results_dir):
    """Output frame rate vs number of mounted objects (0..32)."""
    layout = UiLayout.default_for(SIZE.width, SIZE.height)
    base = Frame.blank(SIZE, (60, 70, 90))
    rows = []
    rng = np.random.default_rng(3)
    for n_objects in (0, 4, 8, 16, 32):
        sc = Scenario("s", "S", 0)
        state = GameState("s")
        for k in range(n_objects):
            sc.add_object(ImageObject(
                object_id=f"o{k}", name=f"o{k}",
                hotspot=RectHotspot(float(rng.integers(0, 130)),
                                    float(rng.integers(0, 80)), 24, 18),
            ))
        comp = Compositor(layout)
        comp.compose(base, sc, state)  # warm the layer cache
        t0 = time.perf_counter()
        reps = 60
        for _ in range(reps):
            comp.compose(base, sc, state)
        dt = time.perf_counter() - t0
        rows.append({"objects": n_objects, "fps": reps / dt,
                     "cache_builds": comp.stats.cache_builds})
    save_result("e4_composition_scaling.txt",
                format_table(rows, title="E4: composition rate vs mounted objects"))
    fps = {r["objects"]: r["fps"] for r in rows}
    assert fps[0] > fps[32], "object blending should cost something"
    assert fps[32] > 24, "must hold full frame rate even with 32 objects"
    assert all(r["cache_builds"] == 1 for r in rows), "layer cache broken"

    sc32 = Scenario("s", "S", 0)
    state = GameState("s")
    comp = Compositor(layout)
    benchmark(comp.compose, base, sc32, state)


@pytest.mark.parametrize("codec_name", sorted(available_codecs()))
def test_e4_interaction_switch_latency(benchmark, codec_name):
    """Click → first frame of the target scenario, per container codec."""
    wiz = (
        GameWizard("Latency", author="bench")
        .scene("a", "A", scene_footage(SIZE, 1))
        .scene("b", "B", scene_footage(SIZE, 2))
        .connect("a", "b", "Go", "Back")
    )
    wiz.project.codec_name = codec_name
    wiz.project.codec_params = {}
    game = wiz.build(require_valid=False)

    def click_and_render():
        eng = game.new_engine()
        eng.start()
        x, y = game.scenarios["a"].get_object("a-go-b").hotspot.center()
        eng.handle_input(MouseClick(x, y))
        return eng.render()

    out = benchmark(click_and_render)
    assert out.size == SIZE
