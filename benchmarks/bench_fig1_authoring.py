"""E1 / Figure 1: the authoring-tool interface, regenerated headlessly.

The paper's Fig. 1 is a screenshot of the authoring tool.  This bench
re-renders the same interface (menu bar, video canvas, segmentation
strip, scenario list, object palette, property/event panels) from a live
project, checks its content, and measures the authoring surface's two
costs: building the worked-example game through the wizard, and
re-rendering the interface.
"""

import pytest

from conftest import save_result
from repro.core import GameWizard
from repro.core.templates import scene_footage
from repro.reporting import render_authoring_screenshot
from repro.video import FrameSize

SIZE = FrameSize(160, 120)


def _author_classroom_game() -> GameWizard:
    return (
        GameWizard("Fix the Computer", author="bench")
        .scene("classroom", "Classroom", scene_footage(SIZE, seed=1))
        .scene("market", "Market", scene_footage(SIZE, seed=2))
        .helper("classroom", "teacher", "Teacher", at=(5, 20, 14, 30),
                lines=["The computer is broken.", "Find a part at the market!"])
        .prop("classroom", "computer", "Computer", at=(60, 40, 30, 30),
              description="It will not boot.", properties={"state": "broken"})
        .item("market", "ram", "RAM module", at=(70, 70, 10, 10))
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(item="ram", target="computer",
                     success_text="The computer boots!",
                     bonus=20, reward_name="Repair badge", win=True)
    )


@pytest.fixture(scope="module")
def wizard():
    return _author_classroom_game()


def test_fig1_screenshot_regenerated(benchmark, wizard, results_dir):
    """Render Fig. 1 and assert every pane the paper's screenshot shows."""
    shot = benchmark(render_authoring_screenshot, wizard.project)
    for pane in (
        "Interactive VGBL Authoring Tool",
        "File  Edit  Video  Object  Event  Game  Help",
        "Video canvas",
        "Segments (auto-cut)",
        "Scenarios",
        "Object palette",
        "Properties",
        "Events",
    ):
        assert pane in shot, f"Fig. 1 pane missing: {pane!r}"
    # The worked example's content is visible in the tool.
    assert "classroom" in shot and "market" in shot
    assert "use_item(computer)" in shot
    save_result("fig1_authoring_tool.txt", shot)


def test_fig1_authoring_throughput(benchmark):
    """Wall time to author the complete worked-example game via the wizard
    (footage synthesis included — the designer's whole loop)."""
    wizard = benchmark(_author_classroom_game)
    assert wizard.project.object_count >= 6


def test_fig1_validation_latency(benchmark, wizard):
    """The editor validates on save; that round-trip must stay interactive."""
    report = benchmark(wizard.check)
    assert report.ok and report.winnable
