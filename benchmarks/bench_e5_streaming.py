"""E5: interactive-TV delivery — branch startup latency vs prefetch.

Regenerates the streaming table: startup delay at branch points for each
prefetch policy across channel profiles, plus traffic/waste accounting,
and the control-device interaction-cost table (§2's remote / PDA /
tablet / keyboard+mouse).
"""

import numpy as np
import pytest

from conftest import save_result
from repro.core import fetch_quest_game
from repro.graph import build_graph
from repro.net import Channel, PREFETCH_POLICIES, StreamSession, make_device
from repro.reporting import format_table
from repro.video import FrameSize, VideoReader

SIZE = FrameSize(160, 120)

CHANNELS = [
    ("adsl_2mbit", 250_000, 0.030),
    ("cable_8mbit", 1_000_000, 0.020),
    ("lan_100mbit", 12_500_000, 0.002),
]


@pytest.fixture(scope="module")
def game():
    # Grainy footage: realistic camera material that does not collapse
    # under RLE, so segments are megabytes and stalls are visible.
    return fetch_quest_game(n_quests=4, size=SIZE, title="Streamed",
                            noise=5).build()


@pytest.fixture(scope="module")
def parts(game):
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    path = [("hub", 20.0)]
    for k in range(4):
        path += [(f"place-{k}", 18.0), ("hub", 12.0)]
    return reader, graph, path


def test_e5_policy_table(benchmark, parts, results_dir):
    reader, graph, path = parts
    rows = []
    stats_by = {}
    for label, bw, lat in CHANNELS:
        for policy in PREFETCH_POLICIES:
            session = StreamSession(reader, graph, Channel(bw, lat), policy=policy)
            stats = session.play_path(path)
            stats_by[(label, policy)] = stats
            rows.append({
                "channel": label,
                "policy": policy,
                "mean_delay_s": stats.mean_startup_delay,
                "max_delay_s": stats.max_startup_delay,
                "instant_frac": stats.instant_switch_fraction,
                "fetched_MB": stats.bytes_fetched / 1e6,
                "wasted_MB": stats.bytes_wasted / 1e6,
            })
    save_result("e5_streaming_policies.txt",
                format_table(rows, title="E5: branch startup latency by prefetch policy"))

    for label, _, _ in CHANNELS:
        none = stats_by[(label, "none")]
        succ = stats_by[(label, "successors")]
        # Prefetch must cut mean delay and raise the instant fraction.
        assert succ.mean_startup_delay <= none.mean_startup_delay
        assert succ.instant_switch_fraction >= none.instant_switch_fraction
    # Faster channels -> lower delays, policy fixed.
    assert (stats_by[("lan_100mbit", "none")].mean_startup_delay
            < stats_by[("adsl_2mbit", "none")].mean_startup_delay)

    def run():
        session = StreamSession(reader, graph, Channel(1_000_000, 0.02),
                                policy="successors")
        return session.play_path(path)

    benchmark(run)


def test_e5_short_dwell_stresses_prefetch(benchmark, parts, results_dir):
    """With very short dwells the link has no idle time: prefetch gains
    shrink — the policy's failure mode, reported honestly."""
    reader, graph, _ = parts
    rows = []
    for dwell in (2.0, 10.0, 30.0):
        path = [("hub", dwell)]
        for k in range(4):
            path += [(f"place-{k}", dwell), ("hub", dwell)]
        deltas = {}
        for policy in ("none", "successors"):
            session = StreamSession(reader, graph, Channel(250_000, 0.03),
                                    policy=policy)
            deltas[policy] = session.play_path(path).mean_startup_delay
        rows.append({
            "dwell_s": dwell,
            "none_delay_s": deltas["none"],
            "successors_delay_s": deltas["successors"],
            "saving": 1 - deltas["successors"] / deltas["none"]
            if deltas["none"] else 0.0,
        })
    save_result("e5_dwell_sensitivity.txt",
                format_table(rows, title="E5: prefetch gain vs dwell time"))
    assert rows[-1]["saving"] >= rows[0]["saving"] - 1e-9

    reader, graph, path = parts
    benchmark.pedantic(
        lambda: StreamSession(reader, graph, Channel(250_000, 0.03),
                              policy="successors").play_path(path),
        rounds=3, iterations=1,
    )


def test_e5_device_cost_table(benchmark, game, results_dir):
    """Interaction cost per device for the same activation script."""
    rng = np.random.default_rng(3)
    hub = game.scenarios["hub"]
    targets = [o.object_id for o in hub.objects][:6]
    rows = []
    for name in ("keyboard_mouse", "tablet", "pda", "remote"):
        device = make_device(name)
        events = 0
        seconds = 0.0
        for target in targets:
            plan = device.activate(hub, target, rng)
            events += len(plan.events)
            seconds += plan.seconds
        rows.append({"device": name, "events": events, "seconds": seconds})
    save_result("e5_device_costs.txt",
                format_table(rows, title="E5: device interaction cost (6 activations)"))
    cost = {r["device"]: r["seconds"] for r in rows}
    assert cost["keyboard_mouse"] < cost["pda"] < cost["remote"]

    device = make_device("remote")
    benchmark(lambda: [device.activate(hub, t, rng) for t in targets])


def test_e5_progressive_playback(benchmark, parts, results_dir):
    """Full-download vs progressive playback: startup halves, but when
    the channel is slower than the content bitrate the difference comes
    back as mid-playback rebuffering — the table shows both sides."""
    reader, graph, path = parts
    rows = []
    by_mode = {}
    for label, bw, lat in CHANNELS:
        for progressive in (False, True):
            session = StreamSession(reader, graph, Channel(bw, lat),
                                    policy="none", progressive=progressive)
            stats = session.play_path(path)
            mode = "progressive" if progressive else "full_download"
            by_mode[(label, mode)] = stats
            rows.append({
                "channel": label,
                "mode": mode,
                "mean_start_s": stats.mean_startup_delay,
                "rebuffer_s": stats.total_rebuffer_seconds,
            })
    save_result("e5_progressive.txt",
                format_table(rows, title="E5: full-download vs progressive start"))
    for label, _, _ in CHANNELS:
        full = by_mode[(label, "full_download")]
        prog = by_mode[(label, "progressive")]
        assert prog.mean_startup_delay <= full.mean_startup_delay + 1e-9
        assert full.total_rebuffer_seconds == 0.0

    benchmark.pedantic(
        lambda: StreamSession(reader, graph, Channel(250_000, 0.03),
                              policy="none", progressive=True).play_path(path),
        rounds=3, iterations=1,
    )
