"""E8: "Comparing to 3D scenarios, it's a cheaper way to produce game
scenarios" (§5).

Regenerates the production-cost comparison: total hours per pipeline as
scene count grows, the crossover analysis (there is none — video wins
from scene one), a constant-sweep robustness check, and the *measured*
end of the claim on our substrate: wall time for the video pipeline's
automated steps (synthesise → segment → commit → compile).
"""

import time

import numpy as np

from conftest import save_result
from repro.core import GameProject, ScenarioEditor
from repro.learning import PIPELINES, Pipeline, compare_pipelines, estimate_cost
from repro.reporting import format_table
from repro.video import FrameSize, generate_clip, random_shot_script

SIZE = FrameSize(160, 120)


def test_e8_cost_curves(benchmark, results_dir):
    scene_counts = (1, 2, 5, 10, 20, 50)
    costs = compare_pipelines(scene_counts)
    rows = [
        {"scenes": c.n_scenes, "pipeline": c.pipeline,
         "total_hours": c.total_hours, "per_scene": c.hours_per_scene_marginal,
         "min_skill": c.skill}
        for c in costs
    ]
    save_result("e8_production_cost.txt",
                format_table(rows, title="E8: scenario production cost by pipeline"))

    by = {(c.n_scenes, c.pipeline): c.total_hours for c in costs}
    for n in scene_counts:
        assert by[(n, "video")] < by[(n, "flash")] < by[(n, "3d")]
    # The gap grows with scale: no crossover anywhere.
    gaps = [by[(n, "3d")] - by[(n, "video")] for n in scene_counts]
    assert gaps == sorted(gaps)

    benchmark(compare_pipelines, scene_counts)


def test_e8_constant_sweep(benchmark, results_dir):
    """Perturb every per-scene constant by ±50%: the ordering holds
    unless 3D modelling becomes faster than filming (which no point in
    the band produces)."""
    rng = np.random.default_rng(8)
    rows = []
    holds = 0
    trials = 200
    for t in range(trials):
        perturbed = {}
        for name, p in PIPELINES.items():
            steps = {k: v * float(rng.uniform(0.5, 1.5))
                     for k, v in p.per_scene_steps.items()}
            perturbed[name] = Pipeline(
                name=p.name,
                fixed_hours=p.fixed_hours * float(rng.uniform(0.5, 1.5)),
                per_scene_steps=steps,
                skill=p.skill,
            )
        ok = all(
            estimate_cost(perturbed["video"], n).total_hours
            < estimate_cost(perturbed["3d"], n).total_hours
            for n in (1, 10, 50)
        )
        holds += ok
    rows.append({"trials": trials, "video_beats_3d": holds,
                 "fraction": holds / trials})
    save_result("e8_constant_sweep.txt",
                format_table(rows, title="E8: robustness under ±50% constant sweep"))
    assert holds == trials

    benchmark.pedantic(
        lambda: estimate_cost(PIPELINES["video"], 10), rounds=5, iterations=1
    )


def test_e8_measured_video_pipeline(benchmark, results_dir):
    """The automated part of the video pipeline, actually measured:
    synthesise footage → auto-segment → commit → encode container."""
    def produce(n_shots=4):
        rng = np.random.default_rng(80)
        clip = generate_clip(
            SIZE,
            random_shot_script(n_shots, rng, size=SIZE,
                               min_duration=14, max_duration=18),
            seed=80,
        )
        project = GameProject("E8")
        editor = ScenarioEditor(project)
        editor.import_footage("movie", clip.frames)
        timeline = editor.auto_segment("movie")
        editor.commit("movie")
        for i, name in enumerate(s.name for s in project.segments):
            editor.create_scenario(f"s{i}", f"Scene {i}", name)
        return project.compile()

    t0 = time.perf_counter()
    game = produce()
    wall = time.perf_counter() - t0
    rows = [{
        "step": "synthesise+segment+commit+encode",
        "scenes": len(game.scenarios),
        "wall_seconds": wall,
        "container_MB": game.container_bytes / 1e6,
    }]
    save_result("e8_measured_pipeline.txt",
                format_table(rows, title="E8: measured automated video pipeline"))
    assert len(game.scenarios) >= 3
    assert wall < 30.0

    benchmark(produce)
